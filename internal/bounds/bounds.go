// Package bounds computes the paper's theoretical bounds on the number of
// TDMA time slots: the tightened lower bound of Theorem 1 (clusters of
// triangles sharing a common edge, plus joint cliques) and the 2Δ² upper
// bound of Lemma 6, along with exact values for the special graph families
// discussed in the paper (complete graphs and cycles).
package bounds

import (
	"sort"

	"fdlsp/internal/graph"
)

// Cluster describes a cluster of a cluster-center node (Definition 3): the
// set of all size-3 cliques containing Center that share the CommonEdge
// (Center, Via). Its size is the number of such triangles, i.e. the number
// of common neighbors of Center and Via.
type Cluster struct {
	Center int
	Via    int   // other endpoint of the common edge
	Apexes []int // common neighbors forming the triangles, sorted
}

// Size returns the cluster size (number of size-3 cliques).
func (c Cluster) Size() int { return len(c.Apexes) }

// ClusterAt returns the cluster of center v with common edge {v,w}.
// It panics if {v,w} is not an edge.
func ClusterAt(g *graph.Graph, v, w int) Cluster {
	if !g.HasEdge(v, w) {
		panic("bounds: cluster common edge is not an edge")
	}
	return Cluster{Center: v, Via: w, Apexes: g.CommonNeighbors(v, w)}
}

// JointEdges returns the joint edges of the cluster (Definition 5): edges
// connecting two apex nodes of the cluster (the triangle such an edge forms
// with the center does not belong to the cluster, since it misses the
// common edge).
func JointEdges(g *graph.Graph, c Cluster) []graph.Edge {
	var out []graph.Edge
	for i := 0; i < len(c.Apexes); i++ {
		for j := i + 1; j < len(c.Apexes); j++ {
			if g.HasEdge(c.Apexes[i], c.Apexes[j]) {
				out = append(out, graph.NormEdge(c.Apexes[i], c.Apexes[j]))
			}
		}
	}
	return out
}

// LargestJointCliqueEdges returns the number of edges in the largest joint
// clique of the cluster (Definition 6): the maximum clique of the graph
// induced by the cluster's apex nodes, counted in edges k(k-1)/2. A clique
// needs at least one joint edge, so results below one edge count as 0.
func LargestJointCliqueEdges(g *graph.Graph, c Cluster) int {
	if len(c.Apexes) < 2 {
		return 0
	}
	sub, _ := g.InducedSubgraph(c.Apexes)
	k := MaxCliqueSize(sub)
	if k < 2 {
		return 0
	}
	return k * (k - 1) / 2
}

// MaxCliqueSize returns the size of a maximum clique using Bron–Kerbosch
// with pivoting. Intended for the small degree-bounded subgraphs arising in
// cluster analysis; exponential in the worst case.
func MaxCliqueSize(g *graph.Graph) int {
	if g.N() == 0 {
		return 0
	}
	adj := make([]map[int]struct{}, g.N())
	for v := 0; v < g.N(); v++ {
		adj[v] = make(map[int]struct{})
		for _, u := range g.Neighbors(v) {
			adj[v][u] = struct{}{}
		}
	}
	best := 0
	var bk func(r, p, x map[int]struct{})
	bk = func(r, p, x map[int]struct{}) {
		if len(p) == 0 && len(x) == 0 {
			if len(r) > best {
				best = len(r)
			}
			return
		}
		if len(r)+len(p) <= best {
			return // cannot beat the incumbent
		}
		// Pivot: vertex of p∪x with most neighbors in p.
		pivot, pivotDeg := -1, -1
		for _, set := range []map[int]struct{}{p, x} {
			for u := range set {
				d := 0
				for w := range p {
					if _, ok := adj[u][w]; ok {
						d++
					}
				}
				if d > pivotDeg {
					pivot, pivotDeg = u, d
				}
			}
		}
		var cands []int
		for u := range p {
			if _, ok := adj[pivot][u]; !ok {
				cands = append(cands, u)
			}
		}
		sort.Ints(cands)
		for _, u := range cands {
			r[u] = struct{}{}
			np, nx := map[int]struct{}{}, map[int]struct{}{}
			for w := range p {
				if _, ok := adj[u][w]; ok {
					np[w] = struct{}{}
				}
			}
			for w := range x {
				if _, ok := adj[u][w]; ok {
					nx[w] = struct{}{}
				}
			}
			bk(r, np, nx)
			delete(r, u)
			delete(p, u)
			x[u] = struct{}{}
		}
	}
	p := make(map[int]struct{}, g.N())
	for v := 0; v < g.N(); v++ {
		p[v] = struct{}{}
	}
	bk(map[int]struct{}{}, p, map[int]struct{}{})
	return best
}

// LowerBound returns the Theorem 1 lower bound on the number of slots of
// any feasible FDLSP schedule:
//
//	max over nodes v and incident edges (v,w) of
//	  2·(deg(v) + |cluster(v,w)| + edges in largest joint clique)
//
// with a floor of 2Δ (the bound of [8], attained on trees). The empty graph
// yields 0.
func LowerBound(g *graph.Graph) int {
	best := 2 * g.MaxDegree()
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			c := ClusterAt(g, v, w)
			if c.Size() == 0 {
				continue
			}
			lb := 2 * (g.Degree(v) + c.Size() + LargestJointCliqueEdges(g, c))
			if lb > best {
				best = lb
			}
		}
	}
	return best
}

// UpperBound returns the Lemma 6 upper bound 2Δ² on the number of slots
// needed by any greedy distance-2 edge coloring.
func UpperBound(g *graph.Graph) int {
	d := g.MaxDegree()
	return 2 * d * d
}

// CompleteGraphSlots returns the exact number of slots needed for K_n
// (paper, Section 3 Note): every arc needs a unique slot, Δ²+Δ of them
// where Δ = n-1.
func CompleteGraphSlots(n int) int {
	d := n - 1
	return d*d + d
}

// PaperCycleSlots returns the slot counts the paper's Section 3 Note quotes
// from [8] for cycles: 4 for even and 6 for odd. Note that these values are
// inconsistent with the paper's own Definition 2 — the proved optima under
// the ILP semantics are 4 (n ≡ 0 mod 4), 6 (n = 6) and 5 otherwise for
// 4 ≤ n ≤ 10; see internal/exact and EXPERIMENTS.md.
func PaperCycleSlots(n int) int {
	if n%2 == 0 {
		return 4
	}
	return 6
}

// CompleteBipartiteSlots returns the exact number of slots for K_{a,b}
// under Definition 2: a slot holds at most one arc per direction (the head
// of any arc is adjacent, across the parts, to the tail of every other
// same-direction arc), and pairing one arc of each direction with disjoint
// endpoints achieves the bound, so the optimum is a·b (for a, b ≥ 2).
func CompleteBipartiteSlots(a, b int) int { return a * b }

// BiDirectedBaseline returns 2Δ, the number of colors needed merely to edge
// color the bi-directed graph ignoring the hidden terminal problem (Vizing
// gives Δ or Δ+1 per direction). Useful as a context line in reports.
func BiDirectedBaseline(g *graph.Graph) int { return 2 * g.MaxDegree() }
