package bounds

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
)

func TestClusterAt(t *testing.T) {
	// The paper's Figure 3 neighborhood: center v=0, via w=1, with three
	// triangles through apexes 2, 3, 4.
	g := graph.New(5)
	g.AddEdge(0, 1)
	for _, x := range []int{2, 3, 4} {
		g.AddEdge(0, x)
		g.AddEdge(1, x)
	}
	c := ClusterAt(g, 0, 1)
	if c.Size() != 3 {
		t.Fatalf("cluster size = %d", c.Size())
	}
	if len(JointEdges(g, c)) != 0 {
		t.Errorf("no joint edges expected yet")
	}
	// Join two apexes: one joint edge, largest joint clique = K2 (1 edge).
	g.AddEdge(2, 3)
	c = ClusterAt(g, 0, 1)
	if je := JointEdges(g, c); len(je) != 1 {
		t.Errorf("joint edges = %v", je)
	}
	if got := LargestJointCliqueEdges(g, c); got != 1 {
		t.Errorf("joint clique edges = %d", got)
	}
	// Join all three apexes: K3 of joint edges, 3 edges.
	g.AddEdge(2, 4)
	g.AddEdge(3, 4)
	c = ClusterAt(g, 0, 1)
	if got := LargestJointCliqueEdges(g, c); got != 3 {
		t.Errorf("joint clique edges = %d", got)
	}
}

func TestClusterAtNonEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ClusterAt(graph.Path(3), 0, 2)
}

func TestMaxCliqueSizeKnown(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{graph.New(0), 0},
		{graph.New(3), 1},
		{graph.Path(5), 2},
		{graph.Cycle(5), 2},
		{graph.Complete(6), 6},
		{graph.CompleteBipartite(3, 3), 2},
	}
	for _, tc := range cases {
		if got := MaxCliqueSize(tc.g); got != tc.want {
			t.Errorf("%v: clique %d, want %d", tc.g, got, tc.want)
		}
	}
	// K4 plus a pendant.
	g := graph.Complete(4).Clone()
	h := graph.New(5)
	for _, e := range g.Edges() {
		h.AddEdge(e.U, e.V)
	}
	h.AddEdge(3, 4)
	if got := MaxCliqueSize(h); got != 4 {
		t.Errorf("K4+pendant: %d", got)
	}
}

func bruteMaxClique(g *graph.Graph) int {
	n := g.N()
	best := 0
	for bits := 0; bits < 1<<n; bits++ {
		ok := true
		size := 0
		for v := 0; v < n && ok; v++ {
			if bits>>v&1 == 0 {
				continue
			}
			size++
			for u := v + 1; u < n; u++ {
				if bits>>u&1 == 1 && !g.HasEdge(v, u) {
					ok = false
					break
				}
			}
		}
		if ok && size > best {
			best = size
		}
	}
	return best
}

func TestMaxCliqueAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		if got, want := MaxCliqueSize(g), bruteMaxClique(g); got != want {
			t.Fatalf("trial %d (%v): got %d want %d", trial, g, got, want)
		}
	}
}

func TestLowerBoundKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"path", graph.Path(5), 4},                // 2Δ, tree
		{"star", graph.Star(6), 10},               // 2Δ
		{"cycle", graph.Cycle(8), 4},              // 2Δ, no triangles
		{"K3", graph.Complete(3), 6},              // 2(2+1+0)
		{"K4", graph.Complete(4), 12},             // 2(3+2+1): two triangles per edge plus the joint edge between the apexes — tight (K4 optimum is 12)
		{"K33", graph.CompleteBipartite(3, 3), 6}, // triangle-free: 2Δ
	}
	for _, tc := range cases {
		if got := LowerBound(tc.g); got != tc.want {
			t.Errorf("%s: lower bound %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestLowerBoundK4Derivation(t *testing.T) {
	// In K4, cluster of (v,w) holds the 2 remaining vertices as apexes and
	// the joint edge between them forms K2: 2(3+2+1) = 12? No — the joint
	// edge's triangle with v IS in another cluster but as a joint edge here
	// it counts 1: check the actual maximum the implementation certifies
	// and that it stays a valid lower bound (K4 optimum is 12).
	g := graph.Complete(4)
	lb := LowerBound(g)
	if lb > 12 {
		t.Fatalf("K4 lower bound %d exceeds the known optimum 12", lb)
	}
	if lb < 2*g.MaxDegree() {
		t.Fatalf("K4 lower bound %d below 2Δ", lb)
	}
}

func TestUpperBound(t *testing.T) {
	if got := UpperBound(graph.Complete(5)); got != 32 {
		t.Errorf("K5 upper = %d, want 2·4² = 32", got)
	}
	if got := UpperBound(graph.New(3)); got != 0 {
		t.Errorf("empty upper = %d", got)
	}
}

func TestBoundsSandwichGreedy(t *testing.T) {
	// lower <= greedy slots <= upper on random graphs.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(20)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		if g.M() == 0 {
			continue
		}
		slots := coloring.Greedy(g, nil).NumColors()
		lb, ub := LowerBound(g), UpperBound(g)
		if slots < lb {
			t.Fatalf("trial %d: greedy %d below lower bound %d (%v) — lower bound unsound", trial, slots, lb, g)
		}
		if slots > ub {
			t.Fatalf("trial %d: greedy %d above upper bound %d", trial, slots, ub)
		}
	}
}

// Property: the Theorem 1 bound is always at least the trivial 2Δ.
func TestLowerBoundAtLeastTrivial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		return LowerBound(g) >= 2*g.MaxDegree()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSpecialFormulas(t *testing.T) {
	if CompleteGraphSlots(5) != 20 || CompleteGraphSlots(4) != 12 {
		t.Error("complete graph formula")
	}
	if PaperCycleSlots(8) != 4 || PaperCycleSlots(9) != 6 {
		t.Error("paper cycle note values")
	}
	if CompleteBipartiteSlots(4, 4) != 16 || CompleteBipartiteSlots(3, 3) != 9 {
		t.Error("K_{a,b} formula")
	}
	if BiDirectedBaseline(graph.Star(5)) != 8 {
		t.Error("2Δ baseline")
	}
}
