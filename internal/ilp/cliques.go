package ilp

import (
	"fmt"
	"sort"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
)

// BuildFDLSPStrong constructs the paper's ILP with clique-strengthened
// constraints: instead of one pairwise row per conflicting arc pair and
// color, arcs are covered by a greedy clique cover of the conflict graph
// and each clique Q contributes Σ_{a∈Q} X_{a,j} ≤ C_j per color. Clique
// rows dominate both the pairwise rows (2) and (4)–(6) and the linking
// rows (1) inside the clique, so the model is equivalent on integers while
// its LP relaxation is much tighter — e.g. a k-clique forces Σ C_j ≥ k at
// the root instead of k/2. This is what lets the from-scratch solver prove
// instances like K4 and K3,3 that defeat the literal formulation.
func BuildFDLSPStrong(g *graph.Graph, maxColors int) (*Model, *FDLSPVars) {
	m := NewModel()
	vars := &FDLSPVars{X: make(map[graph.Arc][]int)}
	arcs := g.Arcs()

	for j := 1; j <= maxColors; j++ {
		vars.C = append(vars.C, m.AddVar(colorName(j), 1))
	}
	for _, a := range arcs {
		xs := make([]int, maxColors)
		for j := 1; j <= maxColors; j++ {
			xs[j-1] = m.AddVar(arcName(a, j), 0)
		}
		vars.X[a] = xs
	}

	// (3) exactly one color per arc.
	for _, a := range arcs {
		coeffs := make(map[int]float64, maxColors)
		for j := 0; j < maxColors; j++ {
			coeffs[vars.X[a][j]] = 1
		}
		m.AddConstraint("one", coeffs, EQ, 1)
	}

	// Clique cover of the conflict graph; every conflicting pair must lie
	// in at least one emitted clique for the integer model to stay exact,
	// so uncovered pairs get their own 2-cliques.
	cliques := cliqueCover(g, arcs)
	for _, q := range cliques {
		for j := 0; j < maxColors; j++ {
			coeffs := make(map[int]float64, len(q)+1)
			for _, a := range q {
				coeffs[vars.X[a][j]] = 1
			}
			coeffs[vars.C[j]] = -1
			m.AddConstraint("clique", coeffs, LE, 0)
		}
	}
	// Linking (1) for arcs not in any clique (isolated in the conflict
	// graph), so C_j is still counted when they use it.
	covered := make(map[graph.Arc]bool)
	for _, q := range cliques {
		for _, a := range q {
			covered[a] = true
		}
	}
	for _, a := range arcs {
		if covered[a] {
			continue
		}
		for j := 0; j < maxColors; j++ {
			m.AddConstraint("link", map[int]float64{vars.X[a][j]: 1, vars.C[j]: -1}, LE, 0)
		}
	}
	// Symmetry breaking.
	for j := 0; j+1 < maxColors; j++ {
		m.AddConstraint("sym", map[int]float64{vars.C[j]: 1, vars.C[j+1]: -1}, GE, 0)
	}
	return m, vars
}

// cliqueCover returns greedy maximal cliques of the conflict graph covering
// every conflicting pair: pairs are processed in order and each uncovered
// pair seeds a maximal clique grown greedily.
func cliqueCover(g *graph.Graph, arcs []graph.Arc) [][]graph.Arc {
	pairs := conflictPairs(g, arcs)
	type key [2]graph.Arc
	covered := make(map[key]bool, len(pairs))
	mk := func(a, b graph.Arc) key {
		if less(a, b) {
			return key{a, b}
		}
		return key{b, a}
	}
	var cliques [][]graph.Arc
	for _, pr := range pairs {
		if covered[mk(pr[0], pr[1])] {
			continue
		}
		clique := []graph.Arc{pr[0], pr[1]}
		for _, c := range arcs {
			if c == pr[0] || c == pr[1] {
				continue
			}
			ok := true
			for _, member := range clique {
				if !coloring.Conflict(g, c, member) {
					ok = false
					break
				}
			}
			if ok {
				clique = append(clique, c)
			}
		}
		sort.Slice(clique, func(i, j int) bool { return less(clique[i], clique[j]) })
		for i := 0; i < len(clique); i++ {
			for j := i + 1; j < len(clique); j++ {
				covered[mk(clique[i], clique[j])] = true
			}
		}
		cliques = append(cliques, clique)
	}
	return cliques
}

func less(a, b graph.Arc) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	return a.To < b.To
}

func colorName(j int) string { return fmt.Sprintf("C_%d", j) }

func arcName(a graph.Arc, j int) string {
	return fmt.Sprintf("X_%d_%d_%d", a.From, a.To, j)
}
