package ilp

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"fdlsp/internal/coloring"
	"fdlsp/internal/exact"
	"fdlsp/internal/graph"
)

func TestSimplexKnownLPs(t *testing.T) {
	// max 3x+2y s.t. x+y<=4, x+3y<=6  => min -(3x+2y), optimum at (4,0): -12.
	p := &lp{
		n: 2,
		c: []float64{-3, -2},
		rows: []lpRow{
			{a: []float64{1, 1}, op: LE, rhs: 4},
			{a: []float64{1, 3}, op: LE, rhs: 6},
		},
	}
	x, v, st := p.solve()
	if st != lpOptimal || math.Abs(v-(-12)) > 1e-6 {
		t.Fatalf("got status %v value %v x=%v, want -12 at (4,0)", st, v, x)
	}

	// Infeasible: x >= 2, x <= 1.
	p = &lp{n: 1, c: []float64{1}, rows: []lpRow{
		{a: []float64{1}, op: GE, rhs: 2},
		{a: []float64{1}, op: LE, rhs: 1},
	}}
	if _, _, st := p.solve(); st != lpInfeasible {
		t.Fatalf("expected infeasible, got %v", st)
	}

	// Unbounded: min -x, x >= 0 free upward.
	p = &lp{n: 1, c: []float64{-1}, rows: []lpRow{{a: []float64{1}, op: GE, rhs: 0}}}
	if _, _, st := p.solve(); st != lpUnbounded {
		t.Fatalf("expected unbounded, got %v", st)
	}

	// Equality: min x+y s.t. x+y=3, x<=2 => 3.
	p = &lp{n: 2, c: []float64{1, 1}, rows: []lpRow{
		{a: []float64{1, 1}, op: EQ, rhs: 3},
		{a: []float64{1, 0}, op: LE, rhs: 2},
	}}
	_, v, st = p.solve()
	if st != lpOptimal || math.Abs(v-3) > 1e-6 {
		t.Fatalf("equality LP: got %v value %v", st, v)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// Classic degenerate LP; Bland's rule must terminate.
	p := &lp{
		n: 3,
		c: []float64{-0.75, 150, -0.02},
		rows: []lpRow{
			{a: []float64{0.25, -60, -0.04}, op: LE, rhs: 0},
			{a: []float64{0.5, -90, -0.02}, op: LE, rhs: 0},
			{a: []float64{0, 0, 1}, op: LE, rhs: 1},
		},
	}
	_, v, st := p.solve()
	if st != lpOptimal {
		t.Fatalf("degenerate LP did not solve: %v", st)
	}
	if v > -0.05+1e-6 {
		t.Fatalf("degenerate LP value %v, want <= -0.05", v)
	}
}

// bruteforceBinary minimizes a model exhaustively.
func bruteforceBinary(m *Model) (best float64, found bool) {
	n := m.NumVars()
	best = math.Inf(1)
	x := make([]float64, n)
	for bits := 0; bits < 1<<n; bits++ {
		for i := 0; i < n; i++ {
			x[i] = float64(bits >> i & 1)
		}
		if m.Feasible(x) {
			if v := m.Eval(x); v < best {
				best, found = v, true
			}
		}
	}
	return best, found
}

func TestSolveAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(8)
		m := NewModel()
		for i := 0; i < n; i++ {
			m.AddVar("x", float64(rng.Intn(7)-2))
		}
		for k := rng.Intn(8); k > 0; k-- {
			coeffs := map[int]float64{}
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					coeffs[i] = float64(rng.Intn(5) - 2)
				}
			}
			op := []Op{LE, GE, EQ}[rng.Intn(3)]
			m.AddConstraint("r", coeffs, op, float64(rng.Intn(5)-1))
		}
		want, feasible := bruteforceBinary(m)
		got := Solve(m, SolveOptions{})
		if !got.Optimal {
			t.Fatalf("trial %d: node budget exhausted on a tiny model", trial)
		}
		if feasible != (got.X != nil) {
			t.Fatalf("trial %d: feasibility disagreement brute=%v solver=%v", trial, feasible, got.X != nil)
		}
		if feasible && math.Abs(got.Value-want) > 1e-6 {
			t.Fatalf("trial %d: solver %v brute force %v", trial, got.Value, want)
		}
	}
}

// TestConflictMatchesPaperSchema checks that the pair set emitted into the
// ILP equals the union of the paper's constraint families (2), (4), (5),
// (6) enumerated literally.
func TestConflictMatchesPaperSchema(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(7)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		arcs := g.Arcs()

		type pair [2]graph.Arc
		norm := func(a, b graph.Arc) pair {
			if a.From > b.From || (a.From == b.From && a.To > b.To) {
				a, b = b, a
			}
			return pair{a, b}
		}
		want := map[pair]bool{}
		add := func(a, b graph.Arc) {
			if a != b {
				want[norm(a, b)] = true
			}
		}
		for u := 0; u < n; u++ {
			nbrs := g.Neighbors(u)
			for _, v := range nbrs {
				for _, w := range nbrs {
					// (4): two out-arcs of u; (6): two in-arcs of u.
					add(graph.Arc{From: u, To: v}, graph.Arc{From: u, To: w})
					add(graph.Arc{From: v, To: u}, graph.Arc{From: w, To: u})
					// (5): out-arc and in-arc at u.
					add(graph.Arc{From: u, To: v}, graph.Arc{From: w, To: u})
				}
			}
			// (2): for edge (u,v): in-arc (w,u) vs out-arc (v,z).
			for _, v := range nbrs {
				for _, w := range nbrs {
					for _, z := range g.Neighbors(v) {
						add(graph.Arc{From: w, To: u}, graph.Arc{From: v, To: z})
					}
				}
			}
		}
		got := map[pair]bool{}
		for _, pr := range conflictPairs(g, arcs) {
			got[norm(pr[0], pr[1])] = true
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("trial %d: paper schema pair %v..%v missing from Conflict", trial, p[0], p[1])
			}
		}
		for p := range got {
			if !want[p] {
				t.Fatalf("trial %d: Conflict pair %v..%v not derivable from paper schema", trial, p[0], p[1])
			}
		}
	}
}

func TestSolveFDLSPMatchesExactOnTinyGraphs(t *testing.T) {
	cases := []*graph.Graph{
		graph.Path(3),
		graph.Path(4),
		graph.Cycle(4),
		graph.Complete(3),
		graph.Star(4),
		graph.CompleteBipartite(2, 2),
	}
	for _, g := range cases {
		_, col := exact.MinSlots(g, exact.Options{})
		res, err := SolveFDLSP(g, 0, SolveOptions{MaxNodes: 2_000_000})
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if !res.Optimal {
			t.Fatalf("%v: ILP not solved to optimality", g)
		}
		if res.Slots != col.K {
			t.Errorf("%v: ILP %d slots, exact %d", g, res.Slots, col.K)
		}
		if viols := coloring.Verify(g, res.Assignment); len(viols) != 0 {
			t.Errorf("%v: infeasible ILP schedule: %v", g, viols[0])
		}
	}
}

func TestWriteLP(t *testing.T) {
	m, _ := BuildFDLSP(graph.Path(3), 4)
	s := m.WriteLP()
	for _, want := range []string{"Minimize", "Subject To", "Binary", "End", "C_1", "X_0_1_1"} {
		if !strings.Contains(s, want) {
			t.Errorf("LP output missing %q", want)
		}
	}
}

func TestCliqueCoverCoversEveryConflictPair(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(7)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		arcs := g.Arcs()
		cliques := cliqueCover(g, arcs)
		covered := map[[2]graph.Arc]bool{}
		for _, q := range cliques {
			// Clique members must be pairwise conflicting.
			for i := 0; i < len(q); i++ {
				for j := i + 1; j < len(q); j++ {
					if !coloring.Conflict(g, q[i], q[j]) {
						t.Fatalf("trial %d: clique contains non-conflicting %v,%v", trial, q[i], q[j])
					}
					a, b := q[i], q[j]
					if less(b, a) {
						a, b = b, a
					}
					covered[[2]graph.Arc{a, b}] = true
				}
			}
		}
		for _, pr := range conflictPairs(g, arcs) {
			a, b := pr[0], pr[1]
			if less(b, a) {
				a, b = b, a
			}
			if !covered[[2]graph.Arc{a, b}] {
				t.Fatalf("trial %d: pair %v,%v not covered", trial, a, b)
			}
		}
	}
}

func TestStrongModelMatchesLiteralOnTinyGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(3), graph.Cycle(4), graph.Complete(3)} {
		lit, err := SolveFDLSP(g, 0, SolveOptions{MaxNodes: 2_000_000})
		if err != nil {
			t.Fatal(err)
		}
		strong, err := SolveFDLSPStrong(g, 0, SolveOptions{MaxNodes: 2_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if !lit.Optimal || !strong.Optimal || lit.Slots != strong.Slots {
			t.Errorf("%v: literal %d (opt %v) vs strong %d (opt %v)", g, lit.Slots, lit.Optimal, strong.Slots, strong.Optimal)
		}
		if viols := coloring.Verify(g, strong.Assignment); len(viols) != 0 {
			t.Errorf("%v: strong model schedule invalid: %v", g, viols[0])
		}
	}
}

func TestStrongModelSolvesK4(t *testing.T) {
	// The literal Section 4 formulation blows up on K4 (its LP bound is
	// weak against color symmetry); the clique-strengthened model proves
	// the optimum 12 quickly.
	g := graph.Complete(4)
	res, err := SolveFDLSPStrong(g, 0, SolveOptions{MaxNodes: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatalf("K4 not proved optimal within budget (%d nodes)", res.Nodes)
	}
	if res.Slots != 12 {
		t.Errorf("K4: %d slots, want 12", res.Slots)
	}
	if viols := coloring.Verify(g, res.Assignment); len(viols) != 0 {
		t.Errorf("invalid: %v", viols[0])
	}
}

func TestStrongModelSolvesK5Instantly(t *testing.T) {
	// In K5 all 20 arcs are pairwise conflicting: the clique cover is a
	// single 20-clique, the LP bound hits the optimum at the root, and the
	// solver proves 20 slots in one node.
	res, err := SolveFDLSPStrong(graph.Complete(5), 0, SolveOptions{MaxNodes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.Slots != 20 {
		t.Fatalf("K5: slots=%d optimal=%v nodes=%d", res.Slots, res.Optimal, res.Nodes)
	}
	if res.Nodes > 5 {
		t.Errorf("K5 took %d nodes; the clique bound should close it at the root", res.Nodes)
	}
}
