// Package ilp implements the paper's integer linear program for FDLSP
// (Section 4) together with the machinery to solve it from scratch: a 0/1
// model representation, an LP-format exporter, a dense two-phase simplex
// for the LP relaxation, and a branch-and-bound solver. It is intended for
// the small instances the paper uses it on ("ILP is helpful to test small
// size instances of the FDLSP problem"); package exact provides an
// independent optimum oracle the ILP results are cross-checked against.
package ilp

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Op is a constraint relation.
type Op int

const (
	// LE is "≤".
	LE Op = iota
	// GE is "≥".
	GE
	// EQ is "=".
	EQ
)

func (op Op) String() string {
	switch op {
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return "<="
	}
}

// Constraint is a sparse linear constraint sum(Coeffs[i]·x_i) Op RHS.
type Constraint struct {
	Name   string
	Coeffs map[int]float64
	Op     Op
	RHS    float64
}

// Model is a 0/1 integer linear program: minimize Obj·x subject to the
// constraints, with every variable binary.
type Model struct {
	names []string
	Obj   []float64
	Cons  []Constraint
}

// NewModel returns an empty minimization model.
func NewModel() *Model { return &Model{} }

// AddVar adds a binary variable with the given objective coefficient and
// returns its index.
func (m *Model) AddVar(name string, obj float64) int {
	m.names = append(m.names, name)
	m.Obj = append(m.Obj, obj)
	return len(m.names) - 1
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.names) }

// Name returns the name of variable i.
func (m *Model) Name(i int) string { return m.names[i] }

// AddConstraint appends a constraint; coeffs is copied.
func (m *Model) AddConstraint(name string, coeffs map[int]float64, op Op, rhs float64) {
	cp := make(map[int]float64, len(coeffs))
	for i, c := range coeffs {
		if i < 0 || i >= len(m.names) {
			panic(fmt.Sprintf("ilp: constraint %q references unknown variable %d", name, i))
		}
		if c != 0 {
			cp[i] = c
		}
	}
	m.Cons = append(m.Cons, Constraint{Name: name, Coeffs: cp, Op: op, RHS: rhs})
}

// Eval returns the objective value of assignment x.
func (m *Model) Eval(x []float64) float64 {
	v := 0.0
	for i, c := range m.Obj {
		v += c * x[i]
	}
	return v
}

// Feasible reports whether the 0/1 vector x satisfies every constraint
// (within a small tolerance).
func (m *Model) Feasible(x []float64) bool {
	const eps = 1e-6
	for _, con := range m.Cons {
		lhs := 0.0
		for i, c := range con.Coeffs {
			lhs += c * x[i]
		}
		switch con.Op {
		case LE:
			if lhs > con.RHS+eps {
				return false
			}
		case GE:
			if lhs < con.RHS-eps {
				return false
			}
		case EQ:
			if math.Abs(lhs-con.RHS) > eps {
				return false
			}
		}
	}
	return true
}

// WriteLP renders the model in CPLEX LP text format, so instances can be
// inspected or fed to an external solver for independent verification.
func (m *Model) WriteLP() string {
	var b strings.Builder
	b.WriteString("Minimize\n obj:")
	for i, c := range m.Obj {
		if c != 0 {
			fmt.Fprintf(&b, " %+g %s", c, m.names[i])
		}
	}
	b.WriteString("\nSubject To\n")
	for k, con := range m.Cons {
		name := con.Name
		if name == "" {
			name = fmt.Sprintf("c%d", k)
		}
		fmt.Fprintf(&b, " %s:", name)
		idxs := make([]int, 0, len(con.Coeffs))
		for i := range con.Coeffs {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			fmt.Fprintf(&b, " %+g %s", con.Coeffs[i], m.names[i])
		}
		fmt.Fprintf(&b, " %s %g\n", con.Op, con.RHS)
	}
	b.WriteString("Binary\n")
	for _, n := range m.names {
		fmt.Fprintf(&b, " %s\n", n)
	}
	b.WriteString("End\n")
	return b.String()
}
