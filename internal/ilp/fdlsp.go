package ilp

import (
	"fmt"
	"math"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
)

// FDLSPVars records the variable layout of a built FDLSP model.
type FDLSPVars struct {
	// C[j] is the index of color-used indicator C_{j+1}.
	C []int
	// X[a][j] is the index of X_{a,j+1} ("arc a has color j+1").
	X map[graph.Arc][]int
}

// BuildFDLSP constructs the paper's ILP (Section 4) for graph g with a
// color budget of maxColors: minimize Σ C_j subject to
//
//	(1) X_{a,j} ≤ C_j                      color counted when used
//	(2) X_{(w,u),j} + X_{(v,z),j} ≤ 1      hidden terminal for every edge
//	                                        (u,v), in-arc of u, out-arc of v
//	(3) Σ_j X_{a,j} = 1                    every arc gets one color
//	(4) X_{(u,v),j} + X_{(u,w),j} ≤ 1      common tail
//	(5) X_{(u,v),j} + X_{(w,u),j} ≤ 1      tail meets head
//	(6) X_{(v,u),j} + X_{(w,u),j} ≤ 1      common head
//
// plus the (optimality-preserving) symmetry breaking C_j ≥ C_{j+1}, which
// orders the used colors first and prunes the search enormously.
func BuildFDLSP(g *graph.Graph, maxColors int) (*Model, *FDLSPVars) {
	m := NewModel()
	vars := &FDLSPVars{X: make(map[graph.Arc][]int)}
	arcs := g.Arcs()

	for j := 1; j <= maxColors; j++ {
		vars.C = append(vars.C, m.AddVar(fmt.Sprintf("C_%d", j), 1))
	}
	for _, a := range arcs {
		xs := make([]int, maxColors)
		for j := 1; j <= maxColors; j++ {
			xs[j-1] = m.AddVar(fmt.Sprintf("X_%d_%d_%d", a.From, a.To, j), 0)
		}
		vars.X[a] = xs
	}

	// (1) linking.
	for _, a := range arcs {
		for j := 0; j < maxColors; j++ {
			m.AddConstraint(fmt.Sprintf("link_%v_%d", a, j+1),
				map[int]float64{vars.X[a][j]: 1, vars.C[j]: -1}, LE, 0)
		}
	}
	// (3) exactly one color per arc.
	for _, a := range arcs {
		coeffs := make(map[int]float64, maxColors)
		for j := 0; j < maxColors; j++ {
			coeffs[vars.X[a][j]] = 1
		}
		m.AddConstraint(fmt.Sprintf("one_%v", a), coeffs, EQ, 1)
	}
	// (2), (4), (5), (6): enumerate conflicting arc pairs once, emit per
	// color. The four constraint families of the paper are exactly the
	// pairs flagged by coloring.Conflict (shared endpoint or hidden
	// terminal), which is validated by TestConflictMatchesPaperSchema.
	pairs := conflictPairs(g, arcs)
	for _, pr := range pairs {
		for j := 0; j < maxColors; j++ {
			m.AddConstraint(fmt.Sprintf("cf_%v_%v_%d", pr[0], pr[1], j+1),
				map[int]float64{vars.X[pr[0]][j]: 1, vars.X[pr[1]][j]: 1}, LE, 1)
		}
	}
	// Symmetry breaking: colors used in increasing order.
	for j := 0; j+1 < maxColors; j++ {
		m.AddConstraint(fmt.Sprintf("sym_%d", j+1),
			map[int]float64{vars.C[j]: 1, vars.C[j+1]: -1}, GE, 0)
	}
	return m, vars
}

// conflictPairs returns every unordered conflicting arc pair, sorted.
func conflictPairs(g *graph.Graph, arcs []graph.Arc) [][2]graph.Arc {
	idx := make(map[graph.Arc]int, len(arcs))
	for i, a := range arcs {
		idx[a] = i
	}
	var out [][2]graph.Arc
	for i, a := range arcs {
		for _, b := range coloring.ConflictingArcs(g, a) {
			if idx[b] > i {
				out = append(out, [2]graph.Arc{a, b})
			}
		}
	}
	return out
}

// FDLSPResult is the outcome of SolveFDLSP.
type FDLSPResult struct {
	Assignment coloring.Assignment
	Slots      int
	Optimal    bool
	Nodes      int64
}

// SolveFDLSP builds and solves the paper's ILP for g, literally as printed
// in Section 4. maxColors bounds the palette (0 means "use the greedy
// schedule's size", which is always sufficient); the greedy solution also
// seeds the incumbent. Intended for small instances only — see
// SolveFDLSPStrong for the clique-strengthened variant and package exact
// for the scalable optimum oracle.
func SolveFDLSP(g *graph.Graph, maxColors int, opts SolveOptions) (*FDLSPResult, error) {
	return solveFDLSP(g, maxColors, opts, BuildFDLSP)
}

// SolveFDLSPStrong solves the clique-strengthened formulation (see
// BuildFDLSPStrong) — same integer optima, far tighter LP relaxation, so
// larger Table 1 instances become provable by the built-in solver.
func SolveFDLSPStrong(g *graph.Graph, maxColors int, opts SolveOptions) (*FDLSPResult, error) {
	return solveFDLSP(g, maxColors, opts, BuildFDLSPStrong)
}

func solveFDLSP(g *graph.Graph, maxColors int, opts SolveOptions, build func(*graph.Graph, int) (*Model, *FDLSPVars)) (*FDLSPResult, error) {
	greedy := coloring.Greedy(g, nil)
	if maxColors == 0 {
		maxColors = greedy.NumColors()
	}
	if maxColors == 0 { // no edges
		return &FDLSPResult{Assignment: coloring.NewAssignment(g), Optimal: true}, nil
	}
	m, vars := build(g, maxColors)

	if !opts.HasIncumbent && greedy.NumColors() <= maxColors {
		opts.Incumbent = float64(greedy.NumColors())
		opts.HasIncumbent = true
	}
	res := Solve(m, opts)

	out := &FDLSPResult{Optimal: res.Optimal, Nodes: res.Nodes}
	if res.X == nil {
		// Budget exhausted without beating the incumbent: fall back to the
		// greedy schedule (still feasible), clearly marked non-optimal
		// unless the bound already proved greedy optimal.
		out.Assignment = greedy
		out.Slots = greedy.NumColors()
		return out, nil
	}
	as := coloring.NewAssignment(g)
	for a, xs := range vars.X {
		for j, vi := range xs {
			if math.Round(res.X[vi]) == 1 {
				as.Set(a, j+1)
				break
			}
		}
	}
	if !as.Complete(g) {
		return nil, fmt.Errorf("ilp: solver returned incomplete assignment")
	}
	out.Assignment = as
	out.Slots = as.NumColors()
	return out, nil
}
