package ilp

import "math"

// lpStatus is the outcome of an LP solve.
type lpStatus int

const (
	lpOptimal lpStatus = iota
	lpInfeasible
	lpUnbounded
)

// lp is a linear program in inequality form over n nonnegative variables:
// minimize c·x subject to rows (a, op, rhs). Upper bounds must be encoded
// as rows by the caller.
type lp struct {
	n    int
	c    []float64
	rows []lpRow
}

type lpRow struct {
	a   []float64 // dense, length n
	op  Op
	rhs float64
}

const lpEps = 1e-9

// solve runs the two-phase dense simplex with Bland's anti-cycling rule and
// returns the optimal vertex, its objective value, and the status.
func (p *lp) solve() ([]float64, float64, lpStatus) {
	m := len(p.rows)
	// Normalize to b >= 0 by row negation.
	type normRow struct {
		a   []float64
		op  Op
		rhs float64
	}
	rows := make([]normRow, m)
	for i, r := range p.rows {
		a := append([]float64(nil), r.a...)
		op, rhs := r.op, r.rhs
		if rhs < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			rhs = -rhs
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		rows[i] = normRow{a: a, op: op, rhs: rhs}
	}

	// Column layout: [ structural x | slacks/surplus | artificials | RHS ].
	nSlack := 0
	for _, r := range rows {
		if r.op != EQ {
			nSlack++
		}
	}
	nArt := 0
	for _, r := range rows {
		if r.op != LE {
			nArt++
		}
	}
	total := p.n + nSlack + nArt
	t := make([][]float64, m+1) // last row = phase objective
	for i := range t {
		t[i] = make([]float64, total+1)
	}
	basis := make([]int, m)
	slackAt, artAt := p.n, p.n+nSlack
	artCols := make([]int, 0, nArt)
	for i, r := range rows {
		copy(t[i], r.a)
		t[i][total] = r.rhs
		switch r.op {
		case LE:
			t[i][slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			t[i][slackAt] = -1
			slackAt++
			t[i][artAt] = 1
			basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		case EQ:
			t[i][artAt] = 1
			basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		}
	}

	pivot := func(obj []float64, allowed int) lpStatus {
		for iter := 0; ; iter++ {
			if iter > 50_000 {
				return lpUnbounded // safety valve; Bland's rule should prevent this
			}
			// Entering column: Bland — lowest index with negative reduced cost.
			col := -1
			for j := 0; j < allowed; j++ {
				if obj[j] < -lpEps {
					col = j
					break
				}
			}
			if col < 0 {
				return lpOptimal
			}
			// Leaving row: min ratio, ties to lowest basis index (Bland).
			row, bestRatio := -1, math.Inf(1)
			for i := 0; i < m; i++ {
				if t[i][col] > lpEps {
					ratio := t[i][total] / t[i][col]
					if ratio < bestRatio-lpEps || (math.Abs(ratio-bestRatio) <= lpEps && (row < 0 || basis[i] < basis[row])) {
						row, bestRatio = i, ratio
					}
				}
			}
			if row < 0 {
				return lpUnbounded
			}
			// Pivot on (row, col).
			pv := t[row][col]
			for j := 0; j <= total; j++ {
				t[row][j] /= pv
			}
			for i := 0; i <= m; i++ {
				if i != row && math.Abs(t[i][col]) > lpEps {
					f := t[i][col]
					for j := 0; j <= total; j++ {
						t[i][j] -= f * t[row][j]
					}
				} else if i != row {
					t[i][col] = 0
				}
			}
			basis[row] = col
		}
	}

	// Phase 1: minimize sum of artificials.
	if nArt > 0 {
		for j := 0; j <= total; j++ {
			t[m][j] = 0
		}
		for _, ac := range artCols {
			t[m][ac] = 1
		}
		// Price out basic artificials.
		for i, b := range basis {
			if t[m][b] != 0 {
				f := t[m][b]
				for j := 0; j <= total; j++ {
					t[m][j] -= f * t[i][j]
				}
			}
		}
		if st := pivot(t[m], total); st == lpUnbounded {
			return nil, 0, lpInfeasible
		}
		if -t[m][total] > 1e-6 {
			return nil, 0, lpInfeasible
		}
		// Drive any artificial still in the basis out (degenerate rows).
		for i := 0; i < m; i++ {
			if basis[i] >= p.n+nSlack {
				moved := false
				for j := 0; j < p.n+nSlack; j++ {
					if math.Abs(t[i][j]) > lpEps {
						// Pivot artificial out.
						pv := t[i][j]
						for k := 0; k <= total; k++ {
							t[i][k] /= pv
						}
						for r := 0; r <= m; r++ {
							if r != i && math.Abs(t[r][j]) > lpEps {
								f := t[r][j]
								for k := 0; k <= total; k++ {
									t[r][k] -= f * t[i][k]
								}
							}
						}
						basis[i] = j
						moved = true
						break
					}
				}
				if !moved {
					// Row is all zeros over real variables: redundant.
					basis[i] = -1
				}
			}
		}
	}

	// Phase 2: original objective over structural + slack columns only.
	for j := 0; j <= total; j++ {
		t[m][j] = 0
	}
	for j := 0; j < p.n; j++ {
		t[m][j] = p.c[j]
	}
	for i, b := range basis {
		if b >= 0 && t[m][b] != 0 {
			f := t[m][b]
			for j := 0; j <= total; j++ {
				t[m][j] -= f * t[i][j]
			}
		}
	}
	if st := pivot(t[m], p.n+nSlack); st == lpUnbounded {
		return nil, 0, lpUnbounded
	}

	x := make([]float64, p.n)
	for i, b := range basis {
		if b >= 0 && b < p.n {
			x[b] = t[i][total]
		}
	}
	obj := 0.0
	for j := 0; j < p.n; j++ {
		obj += p.c[j] * x[j]
	}
	return x, obj, lpOptimal
}
