package ilp

import (
	"math"
)

// SolveOptions bounds the branch-and-bound search.
type SolveOptions struct {
	// MaxNodes caps explored nodes (0 = 200 000).
	MaxNodes int64
	// Incumbent optionally seeds an upper bound (objective value of a known
	// feasible solution); 0 means none. Strictly better solutions are sought.
	Incumbent float64
	// HasIncumbent must be set when Incumbent is meaningful.
	HasIncumbent bool
}

// SolveResult reports the outcome of Solve.
type SolveResult struct {
	X       []float64 // best 0/1 assignment found (nil if none)
	Value   float64
	Optimal bool // proved optimal within the node budget
	Nodes   int64
}

// Solve minimizes the 0/1 model by LP-relaxation branch-and-bound (dense
// two-phase simplex, most-fractional branching, depth-first with the
// LP-suggested value first). Objective coefficients are assumed integral,
// enabling ceiling-based pruning.
func Solve(m *Model, opts SolveOptions) SolveResult {
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 200_000
	}
	bb := &bbState{
		m:        m,
		fixed:    make([]int8, m.NumVars()), // -1 unfixed, 0, 1
		bestVal:  math.Inf(1),
		maxNodes: maxNodes,
	}
	if opts.HasIncumbent {
		bb.bestVal = opts.Incumbent
	}
	for i := range bb.fixed {
		bb.fixed[i] = -1
	}
	bb.branch()
	res := SolveResult{Value: bb.bestVal, Optimal: bb.nodes < bb.maxNodes, Nodes: bb.nodes}
	if bb.bestX != nil {
		res.X = bb.bestX
	}
	return res
}

type bbState struct {
	m        *Model
	fixed    []int8
	bestX    []float64
	bestVal  float64
	nodes    int64
	maxNodes int64
}

func (bb *bbState) branch() {
	if bb.nodes >= bb.maxNodes {
		return
	}
	bb.nodes++
	x, val, status := bb.relaxation()
	if status == lpInfeasible {
		return
	}
	if status == lpUnbounded {
		// Cannot happen for bounded 0/1 models; treat as no information and
		// fall back to exhaustive branching on the first unfixed variable.
		for i, f := range bb.fixed {
			if f < 0 {
				for _, v := range []int8{0, 1} {
					bb.fixed[i] = v
					bb.branch()
					bb.fixed[i] = -1
				}
				return
			}
		}
		return
	}
	// Integral-objective pruning: a child can only reach ceil(val).
	if math.Ceil(val-1e-6) >= bb.bestVal-1e-6 {
		return
	}
	// Find most fractional variable.
	frac, fi := 0.0, -1
	for i, f := range bb.fixed {
		if f >= 0 {
			continue
		}
		d := math.Abs(x[i] - math.Round(x[i]))
		if d > frac {
			frac, fi = d, i
		}
	}
	if fi < 0 || frac < 1e-6 {
		// Integral solution: round and validate.
		xi := make([]float64, len(x))
		for i := range x {
			xi[i] = math.Round(x[i])
		}
		if bb.m.Feasible(xi) {
			v := bb.m.Eval(xi)
			if v < bb.bestVal-1e-6 {
				bb.bestVal = v
				bb.bestX = xi
			}
		}
		return
	}
	// Branch, LP-suggested value first.
	order := []int8{0, 1}
	if x[fi] >= 0.5 {
		order = []int8{1, 0}
	}
	for _, v := range order {
		bb.fixed[fi] = v
		bb.branch()
		bb.fixed[fi] = -1
		if bb.nodes >= bb.maxNodes {
			return
		}
	}
}

// relaxation builds and solves the LP with the current fixings substituted
// out. It returns the full-length solution vector (fixed entries included)
// and the total objective value.
func (bb *bbState) relaxation() ([]float64, float64, lpStatus) {
	m := bb.m
	n := m.NumVars()
	// Map unfixed variables to LP columns.
	col := make([]int, n)
	free := 0
	fixedObj := 0.0
	for i := 0; i < n; i++ {
		if bb.fixed[i] < 0 {
			col[i] = free
			free++
		} else {
			col[i] = -1
			fixedObj += m.Obj[i] * float64(bb.fixed[i])
		}
	}
	p := &lp{n: free, c: make([]float64, free)}
	for i := 0; i < n; i++ {
		if col[i] >= 0 {
			p.c[col[i]] = m.Obj[i]
		}
	}
	for _, con := range m.Cons {
		a := make([]float64, free)
		rhs := con.RHS
		touched := false
		for i, c := range con.Coeffs {
			if col[i] >= 0 {
				a[col[i]] += c
				touched = true
			} else {
				rhs -= c * float64(bb.fixed[i])
			}
		}
		if !touched {
			// Fully fixed constraint: check it directly.
			ok := true
			switch con.Op {
			case LE:
				ok = 0 <= rhs+1e-9
			case GE:
				ok = 0 >= rhs-1e-9
			case EQ:
				ok = math.Abs(rhs) <= 1e-9
			}
			if !ok {
				return nil, 0, lpInfeasible
			}
			continue
		}
		p.rows = append(p.rows, lpRow{a: a, op: con.Op, rhs: rhs})
	}
	// Binary upper bounds for free variables.
	for j := 0; j < free; j++ {
		a := make([]float64, free)
		a[j] = 1
		p.rows = append(p.rows, lpRow{a: a, op: LE, rhs: 1})
	}

	xf, val, status := p.solve()
	if status != lpOptimal {
		return nil, 0, status
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		if col[i] >= 0 {
			x[i] = xf[col[i]]
		} else {
			x[i] = float64(bb.fixed[i])
		}
	}
	return x, val + fixedObj, lpOptimal
}
