package transport

import (
	"testing"

	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

// syncFlood is a BFS flood written against the transport surface: the
// source broadcasts in logical round 0, every node relays on first receipt
// and records the logical round it heard.
type syncFlood struct {
	source  bool
	heardAt int
	relayed bool
}

func (n *syncFlood) Step(env *SyncEnv, inbox []sim.Message) bool {
	if env.Round == 0 {
		n.heardAt = -1
		if n.source {
			n.heardAt = 0
			env.Broadcast("token")
			n.relayed = true
		}
		return n.relayed
	}
	for _, m := range inbox {
		if _, isDown := m.Payload.(PeerDown); isDown {
			continue
		}
		if n.heardAt < 0 {
			n.heardAt = env.Round
			if !n.relayed {
				env.Broadcast("token")
				n.relayed = true
			}
		}
	}
	return n.heardAt >= 0
}

func TestSyncReliableFloodUnderLoss(t *testing.T) {
	g := graph.Path(6)
	nodes := make([]*syncFlood, g.N())
	wraps := make([]*Sync, g.N())
	eng := sim.NewSyncEngine(g, 1, func(id int) sim.SyncNode {
		nodes[id] = &syncFlood{source: id == 0}
		wraps[id] = NewSync(nodes[id], &Options{})
		return wraps[id]
	})
	eng.Fault = &sim.FaultPlan{Seed: 11, Loss: 0.3, Dup: 0.1, Reorder: 2}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// The synchronizer must preserve the one-hop-per-logical-round law even
	// with 30% loss: node v hears the flood in logical round v.
	for v, nd := range nodes {
		if nd.heardAt != v {
			t.Errorf("node %d heard at logical round %d, want %d", v, nd.heardAt, v)
		}
	}
	totals := Collect(counters(wraps))
	if totals.Retries == 0 {
		t.Error("expected retransmissions under 30% loss")
	}
	if totals.GaveUp != 0 || totals.PeersDown != 0 {
		t.Errorf("no crashes, so nothing should give up: %v", totals)
	}
	t.Logf("physical rounds %d, transport %v", eng.Stats().Rounds, totals)
}

func TestSyncDirectModeIsPassthrough(t *testing.T) {
	g := graph.Path(6)
	nodes := make([]*syncFlood, g.N())
	eng := sim.NewSyncEngine(g, 1, func(id int) sim.SyncNode {
		nodes[id] = &syncFlood{source: id == 0}
		return NewSync(nodes[id], nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for v, nd := range nodes {
		if nd.heardAt != v {
			t.Errorf("node %d heard at round %d, want %d", v, nd.heardAt, v)
		}
	}
	// Direct mode adds no wire overhead: still exactly 2m messages.
	if st := eng.Stats(); st.Messages != int64(2*g.M()) {
		t.Errorf("messages = %d, want %d", st.Messages, 2*g.M())
	}
}

func TestSyncGiveUpOnCrashedPeer(t *testing.T) {
	g := graph.Path(3)
	var sawDown []int
	protos := make([]*Sync, g.N())
	eng := sim.NewSyncEngine(g, 1, func(id int) sim.SyncNode {
		protos[id] = NewSync(syncStepFunc(func(env *SyncEnv, inbox []sim.Message) bool {
			if env.Round == 0 {
				env.Broadcast("hi")
			}
			for _, m := range inbox {
				if pd, ok := m.Payload.(PeerDown); ok && env.ID == 1 {
					sawDown = append(sawDown, pd.Peer)
				}
			}
			return true
		}), &Options{RTO: 2, MaxRetries: 2})
		return protos[id]
	})
	eng.Fault = &sim.FaultPlan{Seed: 4, Crashes: []sim.Crash{{Node: 2, At: 0}}}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sawDown) != 1 || sawDown[0] != 2 {
		t.Errorf("node 1 PeerDown notices = %v, want [2]", sawDown)
	}
	if !protos[1].env.Down(2) {
		t.Error("Down(2) should report true at node 1 after give-up")
	}
	totals := Collect(counters(protos))
	if totals.GaveUp == 0 || totals.PeersDown == 0 {
		t.Errorf("want give-up accounting, got %v", totals)
	}
}

type syncStepFunc func(*SyncEnv, []sim.Message) bool

func (f syncStepFunc) Step(env *SyncEnv, in []sim.Message) bool { return f(env, in) }

func counters[T interface{ Counters() Counters }](ws []T) []Counters {
	out := make([]Counters, len(ws))
	for i, w := range ws {
		out[i] = w.Counters()
	}
	return out
}

// asyncEchoOnce: node 0 sends one "ping" per neighbor; receivers reply
// "pong"; node 0 finishes the run after hearing every live neighbor.
type asyncEchoOnce struct {
	pongs *int
}

func (p *asyncEchoOnce) Run(env *AsyncEnv) {
	if env.ID == 0 {
		env.Broadcast("ping")
		want := len(env.Neighbors)
		for {
			m, ok := env.Recv()
			if !ok {
				return
			}
			switch m.Payload.(type) {
			case PeerDown:
				want--
			default:
				*p.pongs++
			}
			if *p.pongs >= want {
				env.FinishAll()
				return
			}
		}
	}
	for {
		m, ok := env.Recv()
		if !ok {
			return
		}
		if m.Payload == "ping" {
			env.Send(m.From, "pong")
		}
	}
}

func TestAsyncReliableEchoUnderLoss(t *testing.T) {
	g := graph.Star(5)
	pongs := 0
	wraps := make([]*Async, g.N())
	eng := sim.NewAsyncEngine(g, 2, func(id int) sim.AsyncNode {
		wraps[id] = NewAsync(&asyncEchoOnce{pongs: &pongs}, &Options{})
		return wraps[id]
	})
	eng.Fault = &sim.FaultPlan{Seed: 21, Loss: 0.4, Dup: 0.2, Reorder: 3}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if pongs != g.N()-1 {
		t.Errorf("heard %d pongs, want %d (exactly-once delivery)", pongs, g.N()-1)
	}
	totals := Collect(counters(wraps))
	if totals.Retries == 0 {
		t.Error("expected retransmissions under 40% loss")
	}
	t.Logf("transport %v", totals)
}

func TestAsyncExactlyOnceUnderDup(t *testing.T) {
	g := graph.Path(2)
	delivered := 0
	eng := sim.NewAsyncEngine(g, 3, func(id int) sim.AsyncNode {
		return NewAsync(asyncRunFunc(func(env *AsyncEnv) {
			if env.ID == 0 {
				for i := 0; i < 20; i++ {
					env.Send(1, i)
				}
				return
			}
			for {
				if _, ok := env.Recv(); !ok {
					return
				}
				delivered++
			}
		}), &Options{})
	})
	eng.Fault = &sim.FaultPlan{Seed: 8, Dup: 1.0, Reorder: 4}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 20 {
		t.Errorf("delivered %d payloads, want exactly 20 despite 100%% duplication", delivered)
	}
}

func TestAsyncGiveUpOnCrashedPeer(t *testing.T) {
	g := graph.Path(2)
	var notice *PeerDown
	eng := sim.NewAsyncEngine(g, 5, func(id int) sim.AsyncNode {
		return NewAsync(asyncRunFunc(func(env *AsyncEnv) {
			if env.ID != 0 {
				for {
					if _, ok := env.Recv(); !ok {
						return
					}
				}
			}
			env.Send(1, "anyone there?")
			for {
				m, ok := env.Recv()
				if !ok {
					return
				}
				if pd, isDown := m.Payload.(PeerDown); isDown {
					notice = &pd
					env.FinishAll()
					return
				}
			}
		}), &Options{RTO: 2, MaxRetries: 3})
	})
	eng.Fault = &sim.FaultPlan{Seed: 9, Crashes: []sim.Crash{{Node: 1, At: 0}}}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if notice == nil || notice.Peer != 1 {
		t.Fatalf("want PeerDown{1} notice at node 0, got %v", notice)
	}
}

type asyncRunFunc func(*AsyncEnv)

func (f asyncRunFunc) Run(env *AsyncEnv) { f(env) }
