package transport

import "fdlsp/internal/obs"

// Metric families of the reliable-transport layer. The transport's per-node
// Counters are collected into Totals by the protocol drivers after each
// engine run; PublishTotals folds one run's totals into a registry. Values
// come from deterministic run accounting, so snapshots stay byte-identical
// per seed.
const (
	metricSegments    = "fdlsp_transport_segments_total"
	metricRetries     = "fdlsp_transport_retransmissions_total"
	metricGaveUp      = "fdlsp_transport_giveups_total"
	metricDupDropped  = "fdlsp_transport_duplicates_dropped_total"
	metricAcks        = "fdlsp_transport_acks_total"
	metricPeersDown   = "fdlsp_transport_peer_down_total"
	metricPeersUp     = "fdlsp_transport_peer_up_total"
	metricRTTSamples  = "fdlsp_transport_rtt_samples_total"
	metricVouched     = "fdlsp_transport_vouches_total"
	metricMaxInFlight = "fdlsp_transport_max_in_flight"
)

// RegisterMetrics creates the transport metric families in reg without
// recording any samples. Idempotent.
func RegisterMetrics(reg *obs.Registry) {
	reg.Counter(metricSegments, "Protocol payloads handed to the transport.")
	reg.Counter(metricRetries, "Retransmissions performed by the ARQ layer.")
	reg.Counter(metricGaveUp, "Segments abandoned after MaxRetries unacknowledged retransmissions.")
	reg.Counter(metricDupDropped, "Received duplicate segments suppressed by sequence numbers.")
	reg.Counter(metricAcks, "Acknowledgement frames sent.")
	reg.Counter(metricPeersDown, "PeerDown verdicts issued (give-ups on a peer).")
	reg.Counter(metricPeersUp, "PeerDown verdicts rescinded after contact resumed (PeerUp).")
	reg.Counter(metricRTTSamples, "Round-trip samples fed to the adaptive RTO estimator.")
	reg.Counter(metricVouched, "Retry budgets reset by direct contact or gossip liveness vouches.")
	reg.Gauge(metricMaxInFlight, "Peak unacknowledged segments at any single endpoint, maximum over runs.")
}

// PublishTotals folds one run's transport totals into reg.
func PublishTotals(reg *obs.Registry, t Totals) {
	if reg == nil {
		return
	}
	RegisterMetrics(reg)
	reg.Counter(metricSegments, "").Add(float64(t.Segments))
	reg.Counter(metricRetries, "").Add(float64(t.Retries))
	reg.Counter(metricGaveUp, "").Add(float64(t.GaveUp))
	reg.Counter(metricDupDropped, "").Add(float64(t.DupDropped))
	reg.Counter(metricAcks, "").Add(float64(t.Acks))
	reg.Counter(metricPeersDown, "").Add(float64(t.PeersDown))
	reg.Counter(metricPeersUp, "").Add(float64(t.PeersUp))
	reg.Counter(metricRTTSamples, "").Add(float64(t.RTTSamples))
	reg.Counter(metricVouched, "").Add(float64(t.Vouched))
	reg.Gauge(metricMaxInFlight, "").SetMax(float64(t.MaxInFlight))
}
