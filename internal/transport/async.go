package transport

import (
	"math/rand"
	"sort"

	"fdlsp/internal/sim"
)

// AsyncProto is an asynchronous protocol written against the transport
// surface. It mirrors sim.AsyncNode exactly — same Run shape, same env
// methods — so moving a protocol onto the reliable transport is a type
// change, not a rewrite.
type AsyncProto interface {
	Run(env *AsyncEnv)
}

// AsyncEnv is the protocol's handle in an asynchronous run: the same
// surface as sim.AsyncEnv, optionally backed by the reliable endpoint.
type AsyncEnv struct {
	ID        int
	Neighbors []int
	Rand      *rand.Rand

	sim *sim.AsyncEnv
	ep  *asyncEndpoint // nil = direct passthrough (reliable network)
}

// Clock returns the node's virtual time.
func (e *AsyncEnv) Clock() int64 { return e.sim.Clock() }

// FinishAll signals global termination, as sim.AsyncEnv.FinishAll.
func (e *AsyncEnv) FinishAll() { e.sim.FinishAll() }

// Down reports whether the transport has given up on peer; always false in
// direct mode.
func (e *AsyncEnv) Down(peer int) bool { return e.ep != nil && e.ep.down[peer] }

// Send transmits payload to a neighbor. In reliable mode the payload rides
// in a sequenced segment that is retransmitted until acknowledged or given
// up on; sends to a peer already given up on are silently suppressed (the
// protocol has received the PeerDown notice).
func (e *AsyncEnv) Send(to int, payload any) {
	ep := e.ep
	if ep == nil {
		e.sim.Send(to, payload)
		return
	}
	if ep.down[to] {
		return
	}
	ep.nextSeq++
	ep.pending[ep.nextSeq] = &outSeg{to: to, payload: payload, sentAt: e.sim.Clock()}
	ep.c.Segments++
	if n := len(ep.pending); n > ep.c.MaxInFlight {
		ep.c.MaxInFlight = n
	}
	e.sim.Send(to, seg{Seq: ep.nextSeq, Round: -1, Payload: payload, Heard: ep.heardList(e.sim.Clock(), to)})
	e.sim.SetTimer(ep.rtoFor(to), retrans{Seq: ep.nextSeq})
}

// Broadcast sends payload to every neighbor.
func (e *AsyncEnv) Broadcast(payload any) {
	for _, u := range e.Neighbors {
		e.Send(u, payload)
	}
}

// Recv blocks until a protocol-level message arrives: a deduplicated
// segment payload, a PeerDown notice, or a raw injected message. The ARQ
// machinery (acks, retransmission timers, give-up) runs inside this loop.
func (e *AsyncEnv) Recv() (sim.Message, bool) {
	ep := e.ep
	if ep == nil {
		return e.sim.Recv()
	}
	for {
		if len(ep.notices) > 0 {
			m := ep.notices[0]
			ep.notices = ep.notices[1:]
			return m, true
		}
		m, ok := e.sim.Recv()
		if !ok {
			return sim.Message{}, false
		}
		switch p := m.Payload.(type) {
		case ack:
			if s := ep.pending[p.Seq]; s != nil && !s.retried {
				// Karn's rule: only never-retransmitted segments sample RTT.
				est := ep.rtt[s.to]
				if est == nil {
					est = &rttEstimator{}
					ep.rtt[s.to] = est
				}
				est.observe(e.sim.Clock() - s.sentAt)
				ep.c.RTTSamples++
			}
			delete(ep.pending, p.Seq)
			e.heard(m.From)
		case seg:
			// Always ack, even duplicates: the peer may have lost our
			// previous ack.
			ep.c.Acks++
			e.sim.Send(m.From, ack{Seq: p.Seq})
			e.heard(m.From)
			if ep.opt.VouchWindow >= 0 {
				for _, q := range p.Heard {
					if q != e.ID {
						e.vouchFor(q)
					}
				}
			}
			if ep.seen[m.From] == nil {
				ep.seen[m.From] = make(map[int64]bool)
			}
			if ep.seen[m.From][p.Seq] {
				ep.c.DupDropped++
				continue
			}
			ep.seen[m.From][p.Seq] = true
			return sim.Message{From: m.From, To: m.To, When: m.When, Payload: p.Payload}, true
		case retrans:
			s, live := ep.pending[p.Seq]
			if !live {
				continue // acked (or abandoned) in the meantime
			}
			if s.retries >= ep.opt.MaxRetries {
				e.giveUp(s.to)
				continue
			}
			s.retries++
			s.retried = true
			ep.c.Retries++
			e.sim.Send(s.to, seg{Seq: p.Seq, Round: -1, Payload: s.payload, Heard: ep.heardList(e.sim.Clock(), s.to)})
			e.sim.SetTimer(ep.opt.backoff(ep.rtoFor(s.to), s.retries), retrans{Seq: p.Seq})
		default:
			// Raw traffic that never went through a peer endpoint: driver
			// and engine injections (From == -1) pass through untouched. A
			// restart notice additionally re-arms the retransmission chain:
			// the engine discards timers addressed into a crash window, so
			// every segment in flight across our own outage needs a fresh
			// timer (and a fresh retry budget) or it would hang forever.
			if _, restarted := m.Payload.(sim.NodeRestarted); restarted {
				seqs := make([]int64, 0, len(ep.pending))
				for q := range ep.pending {
					seqs = append(seqs, q)
				}
				sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
				for _, q := range seqs {
					s := ep.pending[q]
					s.retries = 0
					s.retried = true
					e.sim.SetTimer(ep.rtoFor(s.to), retrans{Seq: q})
				}
			}
			return m, true
		}
	}
}

// heard records direct contact with a peer: its liveness clock refreshes
// and the retry budgets of segments still in flight to it reset — evidence
// the peer is up means pending losses were the link, not the peer.
func (e *AsyncEnv) heard(peer int) {
	e.ep.lastHeard[peer] = e.sim.Clock()
	e.vouchFor(peer)
}

// vouchFor applies liveness evidence for a peer: reset retry budgets of its
// in-flight segments and rescind an earlier give-up with a PeerUp notice.
func (e *AsyncEnv) vouchFor(peer int) {
	ep := e.ep
	for _, s := range ep.pending {
		if s.to == peer && s.retries > 0 {
			s.retries = 0
			s.retried = true
			ep.c.Vouched++
		}
	}
	if ep.down[peer] {
		delete(ep.down, peer)
		ep.c.PeersUp++
		ep.notices = append(ep.notices,
			sim.Message{From: peer, To: e.ID, When: e.sim.Clock(), Payload: PeerUp{Peer: peer}})
		e.sim.Emit(sim.Event{Kind: sim.EventPeerUp, Time: e.sim.Clock(), From: e.ID, To: peer})
	}
}

// giveUp marks peer unreachable, abandons all in-flight segments to it, and
// queues the PeerDown notice for the protocol.
func (e *AsyncEnv) giveUp(peer int) {
	ep := e.ep
	if ep.down[peer] {
		return
	}
	ep.down[peer] = true
	ep.c.PeersDown++
	for q, s := range ep.pending {
		if s.to == peer {
			delete(ep.pending, q)
			ep.c.GaveUp++
		}
	}
	ep.notices = append(ep.notices,
		sim.Message{From: peer, To: e.ID, When: e.sim.Clock(), Payload: PeerDown{Peer: peer}})
	e.sim.Emit(sim.Event{Kind: sim.EventPeerDown, Time: e.sim.Clock(), From: e.ID, To: peer})
}

// outSeg is one unacknowledged segment at the sender.
type outSeg struct {
	to      int
	payload any
	retries int
	sentAt  int64 // virtual time of the first transmission
	retried bool  // ever retransmitted (Karn: no RTT sample then)
}

// asyncEndpoint is the per-node reliable-transport state.
type asyncEndpoint struct {
	opt       Options
	c         Counters
	nextSeq   int64
	pending   map[int64]*outSeg
	seen      map[int]map[int64]bool
	down      map[int]bool
	rtt       map[int]*rttEstimator
	lastHeard map[int]int64 // virtual time a frame last arrived from peer
	notices   []sim.Message
}

// rtoFor returns the link's current adaptive retransmission timeout.
func (ep *asyncEndpoint) rtoFor(peer int) int64 {
	if e := ep.rtt[peer]; e != nil {
		return e.rto(ep.opt.RTO, ep.opt.MaxRTO)
	}
	return ep.opt.RTO
}

// heardList builds the gossip vouch list for a frame to "to": peers heard
// from within VouchWindow, sorted, excluding the destination. Freshly
// allocated per frame — payloads never alias endpoint state.
func (ep *asyncEndpoint) heardList(now int64, to int) []int {
	if ep.opt.VouchWindow < 0 || len(ep.lastHeard) == 0 {
		return nil
	}
	var out []int
	for q, at := range ep.lastHeard {
		if q != to && now-at <= ep.opt.VouchWindow {
			out = append(out, q)
		}
	}
	sort.Ints(out)
	return out
}

// Async adapts an AsyncProto to sim.AsyncNode, inserting the reliable
// endpoint when reliable mode is selected.
type Async struct {
	proto    AsyncProto
	opt      Options
	reliable bool
	preDown  []int
	ep       *asyncEndpoint
}

// NewAsync wraps proto for the asynchronous engine. opt == nil selects
// direct passthrough (the fault-free fast path with zero transport
// overhead); otherwise the reliable endpoint runs with *opt (zero value =
// defaults).
func NewAsync(proto AsyncProto, opt *Options) *Async {
	a := &Async{proto: proto}
	if opt != nil {
		a.reliable = true
		a.opt = opt.withDefaults()
	}
	return a
}

// MarkDown pre-marks peers as unreachable before the run starts, so the
// endpoint never attempts (and never has to give up on) contact with peers a
// driver already knows are dead. No PeerDown notice is generated for them.
// No-op in direct mode.
func (a *Async) MarkDown(peers ...int) {
	if a.reliable {
		a.preDown = append(a.preDown, peers...)
	}
}

// Run implements sim.AsyncNode.
func (a *Async) Run(senv *sim.AsyncEnv) {
	env := &AsyncEnv{ID: senv.ID, Neighbors: senv.Neighbors, Rand: senv.Rand, sim: senv}
	if a.reliable {
		a.ep = &asyncEndpoint{
			opt:       a.opt,
			pending:   make(map[int64]*outSeg),
			seen:      make(map[int]map[int64]bool),
			down:      make(map[int]bool),
			rtt:       make(map[int]*rttEstimator),
			lastHeard: make(map[int]int64),
		}
		for _, p := range a.preDown {
			a.ep.down[p] = true
		}
		env.ep = a.ep
	}
	a.proto.Run(env)
}

// Counters returns the endpoint's accounting (zero in direct mode).
func (a *Async) Counters() Counters {
	if a.ep == nil {
		return Counters{}
	}
	return a.ep.c
}
