// Package transport is a reliable-delivery layer between the protocols in
// internal/core and the lossy runtime modeled by sim.FaultPlan. It provides
// per-link sequence numbering, positive acknowledgements, retransmission
// with capped exponential backoff, and receiver-side duplicate suppression —
// the standard ARQ recipe — over both simulation engines, while exposing the
// same Send/Broadcast/Recv surface the engines give protocols directly, so
// a protocol opts in by swapping its env type, not by rewriting its logic.
//
// Loss is indistinguishable from a dead peer in finite time, so reliability
// is necessarily bounded: after MaxRetries unacknowledged retransmissions
// the sender gives up, marks the peer down for the rest of the run, and
// delivers a PeerDown notice to its own protocol in place of further
// contact. Protocols treat PeerDown as the failure-detector output the
// crash-recovery logic in internal/core keys off.
//
// Asynchronous runs retransmit on engine timers (sim.AsyncEnv.SetTimer);
// synchronous runs count physical rounds. In the synchronous model the
// transport additionally rebuilds the lockstep-round abstraction on top of
// the unreliable network: the engine's RoundGate synchronizer (sim.SyncEnv
// Advance) opens a new logical round only once every live node's previous
// logical round has fully settled — every segment acknowledged or given up
// on — which restores the delivery guarantee round-based protocols like
// DistMIS assume, at a measurable cost in physical rounds (see the fault
// experiment in internal/expt).
package transport

import "fmt"

// Options tunes the ARQ machinery. The zero value selects the defaults.
type Options struct {
	// RTO is the initial retransmission timeout in virtual time units
	// (async) or physical rounds (sync). Default 4: one round trip plus
	// slack under the unit-hop model.
	RTO int64
	// MaxRetries bounds retransmissions of one segment before the sender
	// declares the peer down. Default 8 — with doubling backoff capped at
	// 32·RTO, that rides out loss bursts far beyond the rates the fault
	// experiments exercise.
	MaxRetries int
}

func (o Options) withDefaults() Options {
	if o.RTO <= 0 {
		o.RTO = 4
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 8
	}
	return o
}

// backoff returns the timeout before retransmission attempt "retries"
// (0-based): RTO doubled per retry, capped at 32·RTO.
func (o Options) backoff(retries int) int64 {
	shift := retries
	if shift > 5 {
		shift = 5
	}
	return o.RTO << shift
}

// PeerDown is delivered to a protocol (as a message From the peer) when the
// transport gives up on reaching that peer: MaxRetries retransmissions of
// some segment went unacknowledged. The peer is excluded from this node's
// sends for the rest of the run; protocols use the notice as a local crash
// detector.
type PeerDown struct {
	Peer int
}

// seg is the transport frame wrapping one protocol payload. Round is the
// sender's logical round (synchronous transport only; -1 in async runs) so
// the receiver can assert logical-round integrity.
type seg struct {
	Seq     int64
	Round   int64
	Payload any
}

// ack acknowledges receipt of a segment. Acks are fire-and-forget: a lost
// ack just provokes a retransmission, which is re-acked.
type ack struct {
	Seq int64
}

// retrans is the self-timer payload scheduled per in-flight segment (async
// transport only).
type retrans struct {
	Seq int64
}

// Counters is the per-node accounting of one endpoint's run.
type Counters struct {
	Segments    int64 // protocol payloads handed to the transport
	Retries     int64 // retransmissions performed
	GaveUp      int64 // segments abandoned after MaxRetries
	DupDropped  int64 // received duplicates suppressed
	Acks        int64 // acknowledgements sent
	MaxInFlight int   // peak unacknowledged segments
	PeersDown   int   // peers given up on
}

// add accumulates other into c.
func (c *Counters) add(other Counters) {
	c.Segments += other.Segments
	c.Retries += other.Retries
	c.GaveUp += other.GaveUp
	c.DupDropped += other.DupDropped
	c.Acks += other.Acks
	if other.MaxInFlight > c.MaxInFlight {
		c.MaxInFlight = other.MaxInFlight
	}
	c.PeersDown += other.PeersDown
}

// Totals aggregates transport accounting across all nodes of a run.
type Totals struct {
	Counters
	PerNode []Counters
}

// Collect sums a set of per-node counters into run totals.
func Collect(perNode []Counters) Totals {
	t := Totals{PerNode: perNode}
	for _, c := range perNode {
		t.add(c)
	}
	return t
}

// Add merges another run's totals (drivers composing several engine runs).
func (t *Totals) Add(other Totals) {
	t.Counters.add(other.Counters)
	if t.PerNode == nil {
		t.PerNode = make([]Counters, len(other.PerNode))
	}
	for i := range other.PerNode {
		if i < len(t.PerNode) {
			t.PerNode[i].add(other.PerNode[i])
		}
	}
}

func (t Totals) String() string {
	return fmt.Sprintf("segs=%d retries=%d gaveup=%d dups=%d acks=%d maxinflight=%d peersdown=%d",
		t.Segments, t.Retries, t.GaveUp, t.DupDropped, t.Acks, t.MaxInFlight, t.PeersDown)
}
