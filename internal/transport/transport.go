// Package transport is a reliable-delivery layer between the protocols in
// internal/core and the lossy runtime modeled by sim.FaultPlan. It provides
// per-link sequence numbering, positive acknowledgements, retransmission
// with exponential backoff off an adaptive per-link timeout (Jacobson/RFC
// 6298 SRTT/RTTVAR under Karn's rule, clamped to [RTO, MaxRTO]), and
// receiver-side duplicate suppression — the standard ARQ recipe — over both
// simulation engines, while exposing the same Send/Broadcast/Recv surface
// the engines give protocols directly, so a protocol opts in by swapping
// its env type, not by rewriting its logic.
//
// Loss is indistinguishable from a dead peer in finite time, so reliability
// is necessarily bounded: after MaxRetries unacknowledged retransmissions
// the sender gives up, marks the peer down, and delivers a PeerDown notice
// to its own protocol in place of further contact. A give-up is a verdict,
// not a sentence: direct contact from the peer, or a neighbor's gossip
// vouch (the Heard list piggybacked on every frame, bounded by
// VouchWindow), rescinds it with a PeerUp notice and re-admits the peer.
// Protocols treat PeerDown/PeerUp as the failure-detector output the
// crash-recovery logic in internal/core keys off.
//
// Asynchronous runs retransmit on engine timers (sim.AsyncEnv.SetTimer);
// synchronous runs count physical rounds. In the synchronous model the
// transport additionally rebuilds the lockstep-round abstraction on top of
// the unreliable network: the engine's RoundGate synchronizer (sim.SyncEnv
// Advance) opens a new logical round only once every live node's previous
// logical round has fully settled — every segment acknowledged or given up
// on — which restores the delivery guarantee round-based protocols like
// DistMIS assume, at a measurable cost in physical rounds (see the fault
// experiment in internal/expt).
package transport

import "fmt"

// NoRetries is the MaxRetries sentinel for "send once, never retransmit":
// an unacknowledged segment is abandoned at its first timeout. A literal 0
// means "use the default" so the zero Options value stays the default
// configuration.
const NoRetries = -1

// Options tunes the ARQ machinery. The zero value selects the defaults.
type Options struct {
	// RTO is the initial retransmission timeout in virtual time units
	// (async) or physical rounds (sync), and the floor of the adaptive
	// estimator. Default 4: one round trip plus slack under the unit-hop
	// model. Negative values are rejected by withDefaults (panic): a zero
	// timeout is not expressible, retransmission always waits at least one
	// time unit.
	RTO int64
	// MaxRTO caps the adaptive estimate and the exponential backoff.
	// Default 32·RTO.
	MaxRTO int64
	// MaxRetries bounds retransmissions of one segment before the sender
	// declares the peer down. Default 8 — with doubling backoff capped at
	// MaxRTO, that rides out loss bursts far beyond the rates the fault
	// experiments exercise. Use NoRetries for "no retransmission at all";
	// values below NoRetries are rejected (panic).
	MaxRetries int
	// VouchWindow is the recency horizon of the gossip liveness hint: a
	// sender piggybacks on every segment the list of peers it heard from
	// within the last VouchWindow time units, and receivers treat a vouch
	// for a peer as evidence the peer is alive (retry budgets reset, an
	// earlier give-up is rescinded with PeerUp). Default 8·RTO. Negative
	// disables gossip.
	VouchWindow int64
}

func (o Options) withDefaults() Options {
	if o.RTO < 0 {
		panic(fmt.Sprintf("transport: negative RTO %d", o.RTO))
	}
	if o.RTO == 0 {
		o.RTO = 4
	}
	if o.MaxRTO <= 0 {
		o.MaxRTO = 32 * o.RTO
	}
	switch {
	case o.MaxRetries == 0:
		o.MaxRetries = 8
	case o.MaxRetries == NoRetries:
		o.MaxRetries = 0
	case o.MaxRetries < NoRetries:
		panic(fmt.Sprintf("transport: invalid MaxRetries %d", o.MaxRetries))
	}
	if o.VouchWindow == 0 {
		o.VouchWindow = 8 * o.RTO
	}
	return o
}

// backoff returns the timeout before retransmission attempt "retries"
// (0-based) from a base timeout: base doubled per retry, capped at MaxRTO
// (and never below base). The base is the link's adaptive RTO estimate, or
// Options.RTO before any sample exists.
func (o Options) backoff(base int64, retries int) int64 {
	shift := retries
	if shift > 5 {
		shift = 5
	}
	b := base << shift
	if b > o.MaxRTO {
		b = o.MaxRTO
	}
	if b < base {
		b = base
	}
	return b
}

// PeerDown is delivered to a protocol (as a message From the peer) when the
// transport gives up on reaching that peer: MaxRetries retransmissions of
// some segment went unacknowledged. The peer is excluded from this node's
// sends for the rest of the run; protocols use the notice as a local crash
// detector.
type PeerDown struct {
	Peer int
}

// PeerUp rescinds an earlier PeerDown: contact with the peer resumed (a
// frame arrived from it, or a neighbor vouched for it) after this endpoint
// had given up. The peer is re-admitted to this node's sends; protocols use
// the notice to resume deferred work involving the peer.
type PeerUp struct {
	Peer int
}

// seg is the transport frame wrapping one protocol payload. Round is the
// sender's logical round (synchronous transport only; -1 in async runs) so
// the receiver can assert logical-round integrity. Heard is the gossip
// liveness hint: the sorted set of peers the sender heard from within its
// VouchWindow (nil when empty) — never aliased to sender state, built fresh
// per frame.
type seg struct {
	Seq     int64
	Round   int64
	Payload any
	Heard   []int
}

// ack acknowledges receipt of a segment. Acks are fire-and-forget: a lost
// ack just provokes a retransmission, which is re-acked.
type ack struct {
	Seq int64
}

// retrans is the self-timer payload scheduled per in-flight segment (async
// transport only).
type retrans struct {
	Seq int64
}

// Counters is the per-node accounting of one endpoint's run.
type Counters struct {
	Segments    int64 // protocol payloads handed to the transport
	Retries     int64 // retransmissions performed
	GaveUp      int64 // segments abandoned after MaxRetries
	DupDropped  int64 // received duplicates suppressed
	Acks        int64 // acknowledgements sent
	MaxInFlight int   // peak unacknowledged segments
	PeersDown   int   // peers given up on
	PeersUp     int   // give-ups rescinded after contact resumed
	RTTSamples  int64 // round-trip samples fed to the adaptive estimator
	Vouched     int64 // retry budgets reset by direct contact or gossip vouches
}

// add accumulates other into c.
func (c *Counters) add(other Counters) {
	c.Segments += other.Segments
	c.Retries += other.Retries
	c.GaveUp += other.GaveUp
	c.DupDropped += other.DupDropped
	c.Acks += other.Acks
	if other.MaxInFlight > c.MaxInFlight {
		c.MaxInFlight = other.MaxInFlight
	}
	c.PeersDown += other.PeersDown
	c.PeersUp += other.PeersUp
	c.RTTSamples += other.RTTSamples
	c.Vouched += other.Vouched
}

// Totals aggregates transport accounting across all nodes of a run.
type Totals struct {
	Counters
	PerNode []Counters
}

// Collect sums a set of per-node counters into run totals.
func Collect(perNode []Counters) Totals {
	t := Totals{PerNode: perNode}
	for _, c := range perNode {
		t.add(c)
	}
	return t
}

// Add merges another run's totals (drivers composing several engine runs).
func (t *Totals) Add(other Totals) {
	t.Counters.add(other.Counters)
	if t.PerNode == nil {
		t.PerNode = make([]Counters, len(other.PerNode))
	}
	for i := range other.PerNode {
		if i < len(t.PerNode) {
			t.PerNode[i].add(other.PerNode[i])
		}
	}
}

func (t Totals) String() string {
	return fmt.Sprintf("segs=%d retries=%d gaveup=%d dups=%d acks=%d maxinflight=%d peersdown=%d peersup=%d rtts=%d vouched=%d",
		t.Segments, t.Retries, t.GaveUp, t.DupDropped, t.Acks, t.MaxInFlight, t.PeersDown,
		t.PeersUp, t.RTTSamples, t.Vouched)
}
