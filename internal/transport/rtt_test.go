package transport

import (
	"testing"

	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

func TestRTTEstimatorFirstSample(t *testing.T) {
	var e rttEstimator
	if got := e.rto(4, 128); got != 4 {
		t.Errorf("pre-sample rto = %d, want floor 4", got)
	}
	e.observe(10)
	// RFC 6298 init: SRTT = sample, RTTVAR = sample/2, RTO = SRTT + 4·RTTVAR.
	if e.srtt8 != 80 || e.rttvar4 != 20 {
		t.Errorf("after first sample srtt8=%d rttvar4=%d, want 80, 20", e.srtt8, e.rttvar4)
	}
	if got := e.rto(4, 128); got != 30 {
		t.Errorf("rto after first sample = %d, want 10+20=30", got)
	}
}

func TestRTTEstimatorConvergesOnSteadySamples(t *testing.T) {
	var e rttEstimator
	for i := 0; i < 64; i++ {
		e.observe(6)
	}
	// Constant samples drive SRTT to the sample and RTTVAR toward its
	// integer-decay floor (rttvar4 settles at 3, since 3 - 3/4 = 3), so the
	// timeout settles just above the sample itself.
	if srtt := e.srtt8 / 8; srtt != 6 {
		t.Errorf("steady-state srtt = %d, want 6", srtt)
	}
	if got := e.rto(1, 128); got < 6 || got > 9 {
		t.Errorf("steady-state rto = %d, want within [6,9]", got)
	}
}

func TestRTTEstimatorTracksVariance(t *testing.T) {
	var jittery, steady rttEstimator
	for i := 0; i < 32; i++ {
		steady.observe(8)
		if i%2 == 0 {
			jittery.observe(2)
		} else {
			jittery.observe(14)
		}
	}
	// Same mean, different variance: the jittery link must earn the larger
	// timeout — that margin is what suppresses spurious retransmissions.
	if j, s := jittery.rto(1, 1024), steady.rto(1, 1024); j <= s {
		t.Errorf("jittery rto %d should exceed steady rto %d", j, s)
	}
}

func TestRTTEstimatorClampsSamplesAndBounds(t *testing.T) {
	var e rttEstimator
	e.observe(0) // clamped to 1
	if e.srtt8 != 8 {
		t.Errorf("zero sample not clamped: srtt8 = %d, want 8", e.srtt8)
	}
	e.observe(1 << 40)
	if got := e.rto(4, 64); got != 64 {
		t.Errorf("rto = %d, want ceiling 64", got)
	}
	var low rttEstimator
	low.observe(1)
	for i := 0; i < 32; i++ {
		low.observe(1)
	}
	if got := low.rto(4, 64); got != 4 {
		t.Errorf("rto = %d, want floor 4", got)
	}
}

func TestBackoffMonotonicAndCapped(t *testing.T) {
	o := Options{RTO: 3, MaxRTO: 48}.withDefaults()
	prev := int64(0)
	for r := 0; r < 12; r++ {
		b := o.backoff(3, r)
		if b < prev {
			t.Errorf("backoff(3, %d) = %d < backoff(3, %d) = %d; must be monotone", r, b, r-1, prev)
		}
		if b > o.MaxRTO {
			t.Errorf("backoff(3, %d) = %d exceeds MaxRTO %d", r, b, o.MaxRTO)
		}
		prev = b
	}
	if first := o.backoff(3, 0); first != 3 {
		t.Errorf("backoff(3, 0) = %d, want base 3", first)
	}
	// An adaptive base estimate above MaxRTO must still respect the base
	// (never retransmit sooner than one estimated round trip).
	if b := o.backoff(100, 0); b != 100 {
		t.Errorf("backoff(100, 0) = %d, want 100", b)
	}
}

func TestOptionsWithDefaults(t *testing.T) {
	d := Options{}.withDefaults()
	if d.RTO != 4 || d.MaxRTO != 128 || d.MaxRetries != 8 || d.VouchWindow != 32 {
		t.Errorf("zero-value defaults = %+v", d)
	}
	// NoRetries is the explicit "send once" spelling; a literal 0 means
	// "default", so the two must resolve differently.
	if got := (Options{MaxRetries: NoRetries}).withDefaults().MaxRetries; got != 0 {
		t.Errorf("NoRetries resolved to %d retransmissions, want 0", got)
	}
	if got := (Options{MaxRetries: 3}).withDefaults().MaxRetries; got != 3 {
		t.Errorf("explicit MaxRetries changed to %d", got)
	}
	if got := (Options{VouchWindow: -1}).withDefaults().VouchWindow; got != -1 {
		t.Errorf("disabled gossip (VouchWindow -1) changed to %d", got)
	}
	for _, bad := range []Options{{RTO: -1}, {MaxRetries: NoRetries - 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("withDefaults(%+v) should panic", bad)
				}
			}()
			bad.withDefaults()
		}()
	}
}

func TestNoRetriesGivesUpAtFirstTimeout(t *testing.T) {
	g := graph.Path(2)
	var gotDown bool
	wraps := make([]*Sync, g.N())
	eng := sim.NewSyncEngine(g, 1, func(id int) sim.SyncNode {
		wraps[id] = NewSync(syncStepFunc(func(env *SyncEnv, inbox []sim.Message) bool {
			if env.Round == 0 && env.ID == 0 {
				env.Send(1, "hello?")
			}
			for _, m := range inbox {
				if _, ok := m.Payload.(PeerDown); ok && env.ID == 0 {
					gotDown = true
				}
			}
			return true
		}), &Options{RTO: 2, MaxRetries: NoRetries})
		return wraps[id]
	})
	eng.Fault = &sim.FaultPlan{Seed: 7, Crashes: []sim.Crash{{Node: 1, At: 0}}}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !gotDown {
		t.Fatal("want PeerDown at node 0")
	}
	totals := Collect(counters(wraps))
	if totals.Retries != 0 {
		t.Errorf("NoRetries must never retransmit, got %d retries", totals.Retries)
	}
	if totals.GaveUp != 1 {
		t.Errorf("GaveUp = %d, want 1", totals.GaveUp)
	}
}

func TestSyncPeerUpRescindsGiveUpOnContact(t *testing.T) {
	g := graph.Path(2)
	var ups, downs []int
	wraps := make([]*Sync, g.N())
	eng := sim.NewSyncEngine(g, 1, func(id int) sim.SyncNode {
		wraps[id] = NewSync(syncStepFunc(func(env *SyncEnv, inbox []sim.Message) bool {
			if env.ID == 0 && env.Round == 0 {
				env.Send(1, "hello?")
			}
			for _, m := range inbox {
				switch p := m.Payload.(type) {
				case PeerDown:
					if env.ID == 0 {
						downs = append(downs, p.Peer)
					}
				case PeerUp:
					if env.ID == 0 {
						ups = append(ups, p.Peer)
					}
				case sim.NodeRestarted:
					env.Broadcast("back")
				}
			}
			return true
		}), &Options{RTO: 1, MaxRetries: 1})
		return wraps[id]
	})
	// Node 1's outage outlives node 0's tiny retry budget, so node 0 gives
	// up; the restart broadcast is direct contact and must rescind it.
	eng.Fault = &sim.FaultPlan{Seed: 3, Crashes: []sim.Crash{{Node: 1, At: 0, RestartAt: 20}}}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(downs) != 1 || downs[0] != 1 {
		t.Fatalf("PeerDown notices at node 0 = %v, want [1]", downs)
	}
	if len(ups) != 1 || ups[0] != 1 {
		t.Fatalf("PeerUp notices at node 0 = %v, want [1]", ups)
	}
	if wraps[0].env.Down(1) {
		t.Error("node 0 still reports peer 1 down after rescind")
	}
	totals := Collect(counters(wraps))
	if totals.PeersDown != 1 || totals.PeersUp != 1 {
		t.Errorf("counters %v, want exactly one give-up and one rescind", totals)
	}
}

func TestAsyncVouchRescindsThirdPartyGiveUp(t *testing.T) {
	// Star center 0 with leaves 1, 2... but gossip needs a common neighbor:
	// leaves only talk to the center, so run the triangle instead. Node 2
	// crashes long enough for node 0 to give up, then restarts and contacts
	// only node 1; node 1's next frame to node 0 vouches for 2, which must
	// rescind node 0's give-up without any direct 2->0 contact.
	g := graph.Complete(3)
	var ups []int
	eng := sim.NewAsyncEngine(g, 6, func(id int) sim.AsyncNode {
		return NewAsync(asyncRunFunc(func(env *AsyncEnv) {
			switch env.ID {
			case 0:
				env.Send(2, "hello?")
				for {
					m, ok := env.Recv()
					if !ok {
						return
					}
					if up, isUp := m.Payload.(PeerUp); isUp {
						ups = append(ups, up.Peer)
						env.FinishAll()
						return
					}
				}
			case 1:
				for {
					m, ok := env.Recv()
					if !ok {
						return
					}
					// Any contact from 2 freshens it in node 1's heard set;
					// answering node 0 piggybacks the vouch.
					if m.From == 2 {
						env.Send(0, "fyi")
					}
				}
			default:
				for {
					m, ok := env.Recv()
					if !ok {
						return
					}
					if _, restarted := m.Payload.(sim.NodeRestarted); restarted {
						env.Send(1, "i'm back")
					}
				}
			}
		}), &Options{RTO: 2, MaxRetries: 2, VouchWindow: 64})
	})
	eng.Fault = &sim.FaultPlan{Seed: 14, Crashes: []sim.Crash{{Node: 2, At: 0, RestartAt: 40}}}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 || ups[0] != 2 {
		t.Fatalf("PeerUp notices at node 0 = %v, want [2] via gossip vouch", ups)
	}
}
