package transport

// rttEstimator keeps Jacobson-style smoothed round-trip state for one
// directed link, in the scaled fixed-point form of RFC 6298: srtt8 holds
// 8·SRTT and rttvar4 holds 4·RTTVAR, so the exponential averages
//
//	SRTT   ← 7/8·SRTT   + 1/8·sample
//	RTTVAR ← 3/4·RTTVAR + 1/4·|SRTT − sample|
//
// reduce to integer shifts with no drift from repeated rounding toward
// zero. Samples are taken under Karn's rule — only from segments that were
// acknowledged without ever being retransmitted — so a retransmission
// ambiguity can never poison the estimate. Virtual time is discrete, which
// makes the arithmetic exact and the whole estimator trivially
// deterministic.
type rttEstimator struct {
	srtt8   int64
	rttvar4 int64
	init    bool
}

// observe feeds one round-trip sample (in virtual time units, clamped to a
// minimum of 1).
func (e *rttEstimator) observe(sample int64) {
	if sample < 1 {
		sample = 1
	}
	if !e.init {
		e.init = true
		e.srtt8 = sample * 8
		e.rttvar4 = sample * 2 // RTTVAR starts at sample/2
		return
	}
	diff := e.srtt8/8 - sample
	if diff < 0 {
		diff = -diff
	}
	e.rttvar4 = e.rttvar4 - e.rttvar4/4 + diff
	e.srtt8 = e.srtt8 - e.srtt8/8 + sample
}

// rto returns the retransmission timeout SRTT + max(1, 4·RTTVAR), clamped
// to [floor, ceil]. Before the first sample it returns floor (the
// configured initial RTO).
func (e *rttEstimator) rto(floor, ceil int64) int64 {
	if !e.init {
		return floor
	}
	v := e.rttvar4
	if v < 1 {
		v = 1
	}
	r := e.srtt8/8 + v
	if r < floor {
		r = floor
	}
	if r > ceil {
		r = ceil
	}
	return r
}
