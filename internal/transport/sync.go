package transport

import (
	"math/rand"
	"sort"

	"fdlsp/internal/sim"
)

// SyncProto is a round-based protocol written against the transport
// surface: the same Step contract as sim.SyncNode, but Round is a *logical*
// round — in reliable mode the transport stretches each logical round over
// as many physical rounds as retransmission needs, and the engine's
// RoundGate synchronizer opens the next one only when the whole network has
// settled. Direct mode maps logical rounds 1:1 onto physical rounds.
type SyncProto interface {
	Step(env *SyncEnv, inbox []sim.Message) bool
}

// SyncEnv is the protocol's per-step handle; Round counts logical rounds.
type SyncEnv struct {
	ID        int
	Round     int
	Neighbors []int
	Rand      *rand.Rand

	send func(to int, payload any)
	down func(peer int) bool
}

// Send transmits payload for delivery in the next logical round.
func (e *SyncEnv) Send(to int, payload any) { e.send(to, payload) }

// Broadcast sends payload to every neighbor.
func (e *SyncEnv) Broadcast(payload any) {
	for _, u := range e.Neighbors {
		e.Send(u, payload)
	}
}

// Down reports whether the transport has given up on peer; always false in
// direct mode.
func (e *SyncEnv) Down(peer int) bool { return e.down(peer) }

// syncSeg is one unacknowledged segment at a synchronous sender.
type syncSeg struct {
	to      int
	payload any
	round   int64 // logical round the segment belongs to
	retries int
	due     int  // physical round of the next retransmission
	sentAt  int  // physical round of the first transmission
	retried bool // ever retransmitted (Karn: no RTT sample then)
}

// Sync adapts a SyncProto to sim.SyncNode. In reliable mode it implements
// the full ARQ machinery per physical round and participates in the
// engine's RoundGate synchronizer; in direct mode it is a thin shim.
type Sync struct {
	proto    SyncProto
	opt      Options
	reliable bool

	c         Counters
	nextSeq   int64
	pending   map[int64]*syncSeg
	seen      map[int]map[int64]bool
	down      map[int]bool
	rtt       map[int]*rttEstimator
	lastHeard map[int]int   // physical round a frame last arrived from peer
	events    []sim.Event   // transport trace events, drained by the engine
	buffer    []sim.Message // next logical round's inbox, accumulating
	logical   int           // last delivered logical round
	protoDone bool
	env       SyncEnv
	// senv is the engine env of the physical round being stepped. The
	// protocol-facing env and its send/down closures are built once and
	// reach the current engine env through this field, so Step stops
	// allocating two closures per node per round.
	senv *sim.SyncEnv
}

// NewSync wraps proto for the synchronous engine. opt == nil selects direct
// passthrough; otherwise the reliable endpoint runs with *opt (zero value =
// defaults).
func NewSync(proto SyncProto, opt *Options) *Sync {
	w := &Sync{proto: proto, logical: -1}
	if opt != nil {
		w.reliable = true
		w.opt = opt.withDefaults()
		w.pending = make(map[int64]*syncSeg)
		w.seen = make(map[int]map[int64]bool)
		w.down = make(map[int]bool)
		w.rtt = make(map[int]*rttEstimator)
		w.lastHeard = make(map[int]int)
	}
	return w
}

// Rebind points a direct-mode wrapper at a new protocol instance, for
// drivers that run several protocol phases over one persistent engine (the
// cached env closures stay valid because the engine reuses its per-node
// state across phases). Reliable endpoints must not be rebound: their ARQ
// state — sequence numbers, dedup windows, peer verdicts, RTT estimators —
// is per-run.
func (w *Sync) Rebind(proto SyncProto) {
	if w.reliable {
		panic("transport: Rebind on a reliable endpoint")
	}
	w.proto = proto
	w.protoDone = false
}

// TakeEvents implements sim.EventSource: the engine drains queued transport
// events (peer-down, peer-up) after each round barrier in node-id order,
// keeping the trace deterministic across GOMAXPROCS.
func (w *Sync) TakeEvents() []sim.Event {
	evs := w.events
	w.events = nil
	return evs
}

// rtoFor returns the link's current adaptive retransmission timeout.
func (w *Sync) rtoFor(peer int) int64 {
	if e := w.rtt[peer]; e != nil {
		return e.rto(w.opt.RTO, w.opt.MaxRTO)
	}
	return w.opt.RTO
}

// heard records direct contact with a peer: its liveness clock refreshes
// and the retry budgets of segments still in flight to it reset — evidence
// the peer is up means pending losses were the link, not the peer.
func (w *Sync) heard(env *sim.SyncEnv, peer int) {
	w.lastHeard[peer] = env.Round
	w.vouch(env, peer)
}

// vouch applies liveness evidence for a peer: reset retry budgets of its
// in-flight segments and rescind an earlier give-up with a PeerUp notice.
func (w *Sync) vouch(env *sim.SyncEnv, peer int) {
	for _, s := range w.pending {
		if s.to == peer && s.retries > 0 {
			s.retries = 0
			s.retried = true // budget reset, but Karn still bars sampling
			s.due = env.Round + int(w.rtoFor(peer))
			w.c.Vouched++
		}
	}
	if w.down[peer] {
		delete(w.down, peer)
		w.c.PeersUp++
		w.buffer = append(w.buffer, sim.Message{From: peer, To: env.ID, Payload: PeerUp{Peer: peer}})
		w.events = append(w.events, sim.Event{Kind: sim.EventPeerUp, Time: int64(env.Round), From: env.ID, To: peer})
	}
}

// heardList builds the gossip vouch list for a frame to "to": peers heard
// from within VouchWindow, sorted, excluding the destination itself. The
// slice is freshly allocated per frame — payloads never alias endpoint
// state.
func (w *Sync) heardList(env *sim.SyncEnv, to int) []int {
	if w.opt.VouchWindow < 0 || len(w.lastHeard) == 0 {
		return nil
	}
	var out []int
	for q, at := range w.lastHeard {
		if q != to && int64(env.Round-at) <= w.opt.VouchWindow {
			out = append(out, q)
		}
	}
	sort.Ints(out)
	return out
}

// Counters returns the endpoint's accounting (zero in direct mode).
func (w *Sync) Counters() Counters { return w.c }

// MarkDown pre-marks peers as unreachable before the run starts. Drivers
// composing multiple engine runs use it to carry crash knowledge from one
// phase into the next, so every node skips the full retry-and-give-up cycle
// against peers already known dead. No PeerDown notice is generated and the
// peers are not counted in PeersDown: the protocol driver already knows.
// No-op in direct mode.
func (w *Sync) MarkDown(peers ...int) {
	if !w.reliable {
		return
	}
	for _, p := range peers {
		w.down[p] = true
	}
}

// GateReady implements sim.RoundGate: the node has no unacknowledged
// outbound segments, so the global logical round may advance.
func (w *Sync) GateReady() bool { return !w.reliable || len(w.pending) == 0 }

// Step implements sim.SyncNode, executing one physical round: ack and
// buffer arriving segments, retransmit due ones, and — when the engine's
// synchronizer opens the next logical round — deliver the buffered inbox to
// the protocol.
func (w *Sync) Step(env *sim.SyncEnv, inbox []sim.Message) bool {
	// The engine hands each node a stable env for the whole run; caching it
	// lets the wrapper env's send closure be built once instead of per
	// round. It is only dereferenced inside Step, on the owning goroutine.
	//lint:ignore envowner cached for the prebuilt send closure, used only within Step on the owning goroutine
	w.senv = env
	if !w.reliable {
		if w.env.send == nil {
			w.env = SyncEnv{
				ID: env.ID, Neighbors: env.Neighbors, Rand: env.Rand,
				send: func(to int, p any) { w.senv.Send(to, p) },
				down: func(int) bool { return false },
			}
		}
		w.env.Round = env.Round
		return w.proto.Step(&w.env, inbox)
	}

	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case ack:
			if s := w.pending[p.Seq]; s != nil && !s.retried {
				// Karn's rule: only never-retransmitted segments sample RTT.
				est := w.rtt[s.to]
				if est == nil {
					est = &rttEstimator{}
					w.rtt[s.to] = est
				}
				est.observe(int64(env.Round - s.sentAt))
				w.c.RTTSamples++
			}
			delete(w.pending, p.Seq)
			w.heard(env, m.From)
		case seg:
			// Always ack, even duplicates: the peer may have lost our
			// previous ack.
			w.c.Acks++
			env.Send(m.From, ack{Seq: p.Seq})
			w.heard(env, m.From)
			if w.opt.VouchWindow >= 0 {
				for _, q := range p.Heard {
					if q != env.ID {
						w.vouch(env, q)
					}
				}
			}
			if w.seen[m.From] == nil {
				w.seen[m.From] = make(map[int64]bool)
			}
			if w.seen[m.From][p.Seq] {
				w.c.DupDropped++
				continue
			}
			w.seen[m.From][p.Seq] = true
			w.buffer = append(w.buffer, sim.Message{From: m.From, To: env.ID, Payload: p.Payload})
		default:
			// Driver and engine injections (From == -1) bypass peer
			// endpoints. A restart notice additionally refreshes the retry
			// budget of everything still in flight: the unanswered
			// retransmissions ran into our own outage, not dead peers.
			if _, restarted := m.Payload.(sim.NodeRestarted); restarted {
				for _, s := range w.pending {
					s.retries = 0
					s.retried = true
					s.due = env.Round + int(w.rtoFor(s.to))
				}
			}
			w.buffer = append(w.buffer, m)
		}
	}

	// Retransmit due segments in sequence order (deterministic), giving up
	// on peers that exhausted their retry budget.
	if len(w.pending) > 0 {
		seqs := make([]int64, 0, len(w.pending))
		for q := range w.pending {
			seqs = append(seqs, q)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, q := range seqs {
			s, live := w.pending[q]
			if !live || env.Round < s.due {
				continue
			}
			if s.retries >= w.opt.MaxRetries {
				w.giveUp(env, s.to)
				continue
			}
			s.retries++
			s.retried = true
			w.c.Retries++
			env.Send(s.to, seg{Seq: q, Round: s.round, Payload: s.payload, Heard: w.heardList(env, s.to)})
			s.due = env.Round + int(w.opt.backoff(w.rtoFor(s.to), s.retries))
		}
	}

	// The synchronizer opened the next logical round: flush the buffered
	// inbox to the protocol and wrap its sends as fresh segments.
	if env.Advance {
		w.logical++
		flush := w.buffer
		w.buffer = nil
		sim.SortByFrom(flush)
		for i := range flush {
			flush[i].When = int64(w.logical)
		}
		if w.env.send == nil {
			w.env = SyncEnv{
				ID: env.ID, Neighbors: env.Neighbors, Rand: env.Rand,
				send: func(to int, p any) { w.sendSeg(w.senv, to, p) },
				down: func(peer int) bool { return w.down[peer] },
			}
		}
		w.env.Round = w.logical
		w.protoDone = w.proto.Step(&w.env, flush)
	}
	return w.protoDone && len(w.pending) == 0 && len(w.buffer) == 0
}

// sendSeg wraps one protocol payload as a sequenced segment.
func (w *Sync) sendSeg(env *sim.SyncEnv, to int, payload any) {
	if w.down[to] {
		return
	}
	w.nextSeq++
	w.pending[w.nextSeq] = &syncSeg{
		to: to, payload: payload, round: int64(w.logical),
		due: env.Round + int(w.rtoFor(to)), sentAt: env.Round,
	}
	w.c.Segments++
	if n := len(w.pending); n > w.c.MaxInFlight {
		w.c.MaxInFlight = n
	}
	env.Send(to, seg{Seq: w.nextSeq, Round: int64(w.logical), Payload: payload, Heard: w.heardList(env, to)})
}

// giveUp marks peer unreachable, abandons its in-flight segments, and
// queues the PeerDown notice for the next logical inbox.
func (w *Sync) giveUp(env *sim.SyncEnv, peer int) {
	if w.down[peer] {
		return
	}
	w.down[peer] = true
	w.c.PeersDown++
	for q, s := range w.pending {
		if s.to == peer {
			delete(w.pending, q)
			w.c.GaveUp++
		}
	}
	w.buffer = append(w.buffer, sim.Message{From: peer, To: env.ID, Payload: PeerDown{Peer: peer}})
	w.events = append(w.events, sim.Event{Kind: sim.EventPeerDown, Time: int64(env.Round), From: env.ID, To: peer})
}
