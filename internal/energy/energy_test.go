package energy

import (
	"math"
	"math/rand"
	"testing"

	"fdlsp/internal/broadcast"
	"fdlsp/internal/coloring"
	"fdlsp/internal/geom"
	"fdlsp/internal/graph"
	"fdlsp/internal/sched"
)

func frameOf(tb testing.TB, g *graph.Graph) *sched.Schedule {
	tb.Helper()
	s, err := sched.Build(g, coloring.Greedy(g, nil))
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func TestLinkScheduleAccountingOnPath(t *testing.T) {
	g := graph.Path(2) // two nodes, frame of 2 slots (one per direction)
	s := frameOf(t, g)
	m := Model{Tx: 2, Rx: 3, Idle: 100, Sleep: 0.5}
	rep := LinkSchedule(g, s, m)
	// Each node transmits once and receives once; no sleep in a 2-slot frame.
	want := 2.0 + 3.0
	for v, e := range rep.PerNode {
		if math.Abs(e-want) > 1e-9 {
			t.Errorf("node %d energy %v, want %v", v, e, want)
		}
	}
	if rep.Total != 2*want || rep.Max != want || rep.Mean != want {
		t.Errorf("aggregates: %+v", rep)
	}
}

func TestLinkScheduleSleepDominatesSparseFrames(t *testing.T) {
	// In a star, leaves are active in only 2 of the 2Δ slots and sleep the
	// rest: their energy must be far below the center's.
	g := graph.Star(9)
	s := frameOf(t, g)
	rep := LinkSchedule(g, s, DefaultModel())
	center, leaf := rep.PerNode[0], rep.PerNode[1]
	if center <= leaf {
		t.Errorf("center %v should outspend leaf %v", center, leaf)
	}
	if rep.Max != center {
		t.Errorf("hottest node should be the center")
	}
}

func TestBroadcastScheduleIdleListening(t *testing.T) {
	g := graph.Star(5) // center hears 4 neighbors
	colors := broadcast.Greedy(g)
	m := Model{Tx: 1, Rx: 1, Idle: 1, Sleep: 0}
	rep, err := BroadcastSchedule(g, colors, m)
	if err != nil {
		t.Fatal(err)
	}
	// The center idles in every leaf slot: tx(1) + idle(#distinct leaf
	// colors). Leaves idle only in the center's slot: 1 + 1.
	if rep.PerNode[0] <= rep.PerNode[1] {
		t.Errorf("center %v should outspend a leaf %v", rep.PerNode[0], rep.PerNode[1])
	}
	if _, err := BroadcastSchedule(g, []int{1, 2}, m); err == nil {
		t.Error("length mismatch not caught")
	}
}

func TestLinkBeatsBroadcastPerLinkService(t *testing.T) {
	// The paper's §1 power claim, quantified: serving every directed link
	// once costs less energy per node under link scheduling.
	rng := rand.New(rand.NewSource(1))
	g, _ := geom.RandomUDG(100, 10, 1.4, rng)
	s := frameOf(t, g)
	colors := broadcast.Greedy(g)
	link, bcast, err := PerLinkServiceEnergy(g, s, colors, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if link >= bcast {
		t.Errorf("link %v >= broadcast %v — paper's power argument not reproduced", link, bcast)
	}
	t.Logf("per-node energy to serve all links once: link=%.2f broadcast=%.2f (%.1fx)", link, bcast, bcast/link)
}

func TestReportOccupancySums(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.GNM(30, 70, rng)
	s := frameOf(t, g)
	rep := LinkSchedule(g, s, DefaultModel())
	if rep.TxSlots+rep.RxSlots+rep.SleepSlots != s.FrameLength {
		t.Errorf("hottest node occupancy %d+%d+%d != frame %d",
			rep.TxSlots, rep.RxSlots, rep.SleepSlots, s.FrameLength)
	}
}
