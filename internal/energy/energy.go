// Package energy models transceiver energy per TDMA frame, quantifying the
// paper's Section 1 power argument: under link scheduling a sensor knows
// exactly in which slots it transmits and in which it is the intended
// receiver, and sleeps otherwise; under broadcast scheduling a sensor must
// keep its receiver on in every slot owned by any of its neighbors, because
// it cannot know beforehand whether it is the intended recipient ("link
// scheduling better conserves power since each sensor in broadcast
// scheduling switches on its transceiver even if it is not the intended
// receiver of its neighbor's message").
package energy

import (
	"fmt"

	"fdlsp/internal/broadcast"
	"fdlsp/internal/graph"
	"fdlsp/internal/sched"
)

// Model holds per-slot radio costs in arbitrary energy units.
type Model struct {
	Tx    float64 // transmitting for one slot
	Rx    float64 // receiving (intended) for one slot
	Idle  float64 // listening without being the intended receiver
	Sleep float64 // radio off
}

// DefaultModel uses typical low-power-radio ratios (CC2420-style): receive
// and idle listening cost about the same as transmitting; sleeping is three
// orders of magnitude cheaper.
func DefaultModel() Model {
	return Model{Tx: 1.0, Rx: 1.1, Idle: 1.1, Sleep: 0.001}
}

// Report is the per-frame energy accounting of one schedule.
type Report struct {
	PerNode []float64 // energy per frame for each node
	Total   float64
	Max     float64 // hottest node (network lifetime is bound by it)
	Mean    float64
	// Slot occupancy of the hottest node: how its frame splits.
	TxSlots, RxSlots, IdleSlots, SleepSlots int
}

// LinkSchedule accounts a full duplex link schedule: each node transmits in
// its TX slots, receives in its RX slots and sleeps in all others — the
// timetable is known network-wide, so there is no idle listening.
func LinkSchedule(g *graph.Graph, s *sched.Schedule, m Model) Report {
	rep := Report{PerNode: make([]float64, g.N())}
	frame := s.FrameLength
	hottest := -1
	for v := 0; v < g.N(); v++ {
		tx := len(s.NodeTX[v])
		rx := len(s.NodeRX[v])
		sleep := frame - tx - rx
		e := float64(tx)*m.Tx + float64(rx)*m.Rx + float64(sleep)*m.Sleep
		rep.PerNode[v] = e
		rep.Total += e
		if e > rep.Max {
			rep.Max = e
			hottest = v
		}
	}
	if g.N() > 0 {
		rep.Mean = rep.Total / float64(g.N())
	}
	if hottest >= 0 {
		rep.TxSlots = len(s.NodeTX[hottest])
		rep.RxSlots = len(s.NodeRX[hottest])
		rep.SleepSlots = frame - rep.TxSlots - rep.RxSlots
	}
	return rep
}

// BroadcastSchedule accounts a broadcast schedule under unicast traffic:
// node v transmits in its own slot and must idle-listen in every slot owned
// by one of its neighbors (it may be the intended receiver of any of them),
// sleeping only in slots owned by no neighbor.
func BroadcastSchedule(g *graph.Graph, colors []int, m Model) (Report, error) {
	if len(colors) != g.N() {
		return Report{}, fmt.Errorf("energy: %d colors for %d nodes", len(colors), g.N())
	}
	frame := broadcast.Slots(colors)
	rep := Report{PerNode: make([]float64, g.N())}
	hottest := -1
	for v := 0; v < g.N(); v++ {
		listen := make(map[int]struct{})
		for _, u := range g.Neighbors(v) {
			listen[colors[u]] = struct{}{}
		}
		delete(listen, colors[v]) // cannot listen while transmitting
		tx := 1
		if g.N() == 1 {
			tx = 1
		}
		sleep := frame - tx - len(listen)
		e := float64(tx)*m.Tx + float64(len(listen))*m.Idle + float64(sleep)*m.Sleep
		rep.PerNode[v] = e
		rep.Total += e
		if e > rep.Max {
			rep.Max = e
			hottest = v
		}
	}
	if g.N() > 0 {
		rep.Mean = rep.Total / float64(g.N())
	}
	if hottest >= 0 {
		rep.TxSlots = 1
		listen := make(map[int]struct{})
		for _, u := range g.Neighbors(hottest) {
			listen[colors[u]] = struct{}{}
		}
		delete(listen, colors[hottest])
		rep.IdleSlots = len(listen)
		rep.SleepSlots = frame - 1 - rep.IdleSlots
	}
	return rep, nil
}

// PerLinkServiceEnergy compares the two schemes on equal work: the mean
// per-node energy spent to serve every directed link once. The link
// schedule does it in one frame; the broadcast schedule must run Δ frames
// (each node forwards up to Δ distinct unicast messages, one per frame).
func PerLinkServiceEnergy(g *graph.Graph, s *sched.Schedule, colors []int, m Model) (link, bcast float64, err error) {
	lr := LinkSchedule(g, s, m)
	br, err := BroadcastSchedule(g, colors, m)
	if err != nil {
		return 0, 0, err
	}
	return lr.Mean, br.Mean * float64(g.MaxDegree()), nil
}
