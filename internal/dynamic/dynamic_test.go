package dynamic

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
)

func mustNetwork(tb testing.TB, g *graph.Graph) *Network {
	tb.Helper()
	n, err := New(g, coloring.Greedy(g, nil))
	if err != nil {
		tb.Fatal(err)
	}
	return n
}

func checkValid(tb testing.TB, n *Network, context string) {
	tb.Helper()
	if viols := coloring.Verify(n.Graph(), n.Assignment()); len(viols) != 0 {
		tb.Fatalf("%s: schedule invalid: %v", context, viols[0])
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	g := graph.Path(3)
	as := coloring.NewAssignment(g)
	if _, err := New(g, as); err == nil {
		t.Fatal("expected error for incomplete schedule")
	}
}

func TestLinkDownKeepsValidity(t *testing.T) {
	g := graph.Cycle(6)
	n := mustNetwork(t, g)
	if err := n.Apply(Event{Kind: LinkDown, U: 0, V: 1}); err != nil {
		t.Fatal(err)
	}
	checkValid(t, n, "after link-down")
	if n.Graph().HasEdge(0, 1) {
		t.Error("edge not removed")
	}
	if n.Stats().DroppedArcs != 2 {
		t.Errorf("dropped arcs = %d", n.Stats().DroppedArcs)
	}
	if err := n.Apply(Event{Kind: LinkDown, U: 0, V: 1}); err == nil {
		t.Error("double link-down should fail")
	}
}

func TestLinkUpColorsNewArcs(t *testing.T) {
	g := graph.Path(4)
	n := mustNetwork(t, g)
	if err := n.Apply(Event{Kind: LinkUp, U: 0, V: 3}); err != nil {
		t.Fatal(err)
	}
	checkValid(t, n, "after link-up")
	if n.Assignment()[graph.Arc{From: 0, To: 3}] == coloring.None {
		t.Error("new arc uncolored")
	}
	if n.Stats().NewArcs != 2 {
		t.Errorf("new arcs = %d", n.Stats().NewArcs)
	}
	if err := n.Apply(Event{Kind: LinkUp, U: 0, V: 3}); err == nil {
		t.Error("duplicate link-up should fail")
	}
}

func TestLinkUpRepairsHiddenTerminal(t *testing.T) {
	// Two separate edges scheduled in slot 1 each; connecting them creates
	// a hidden terminal that must be repaired.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	as := coloring.NewAssignment(g)
	as.Set(graph.Arc{From: 0, To: 1}, 1)
	as.Set(graph.Arc{From: 1, To: 0}, 2)
	as.Set(graph.Arc{From: 2, To: 3}, 1) // conflicts with (0,1) once 1-2 exists
	as.Set(graph.Arc{From: 3, To: 2}, 2)
	n, err := New(g, as)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Apply(Event{Kind: LinkUp, U: 1, V: 2}); err != nil {
		t.Fatal(err)
	}
	checkValid(t, n, "after repairing link-up")
	if n.Stats().RecoloredArcs == 0 {
		t.Error("expected at least one recolored arc")
	}
}

func TestNodeFail(t *testing.T) {
	g := graph.Star(6)
	n := mustNetwork(t, g)
	if err := n.Apply(Event{Kind: NodeFail, U: 0}); err != nil {
		t.Fatal(err)
	}
	checkValid(t, n, "after center failure")
	if n.Graph().M() != 0 {
		t.Errorf("star center failed but %d edges remain", n.Graph().M())
	}
	if n.Slots() != 0 {
		t.Errorf("no links left but %d slots", n.Slots())
	}
}

func TestNodeJoinAndMove(t *testing.T) {
	g := graph.New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	n := mustNetwork(t, g)
	if err := n.Apply(Event{Kind: NodeJoin, U: 4, Peers: []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	checkValid(t, n, "after join")
	if !n.Graph().HasEdge(4, 1) || !n.Graph().HasEdge(4, 2) {
		t.Error("join links missing")
	}
	if err := n.Apply(Event{Kind: NodeMove, U: 4, Peers: []int{2, 3}}); err != nil {
		t.Fatal(err)
	}
	checkValid(t, n, "after move")
	if n.Graph().HasEdge(4, 1) || !n.Graph().HasEdge(4, 3) || !n.Graph().HasEdge(4, 2) {
		t.Error("move did not rewire correctly")
	}
}

func TestChurnStaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.GNM(25, 60, rng)
	n := mustNetwork(t, g)
	for step := 0; step < 400; step++ {
		u, v := rng.Intn(25), rng.Intn(25)
		if u == v {
			continue
		}
		var ev Event
		if n.Graph().HasEdge(u, v) {
			ev = Event{Kind: LinkDown, U: u, V: v}
		} else {
			ev = Event{Kind: LinkUp, U: u, V: v}
		}
		if err := n.Apply(ev); err != nil {
			t.Fatalf("step %d %v: %v", step, ev, err)
		}
		checkValid(t, n, ev.String())
	}
	if n.Stats().Events != 400 {
		// Some iterations skip on u==v, so events <= 400; ensure nontrivial.
		if n.Stats().Events < 100 {
			t.Errorf("too few events applied: %d", n.Stats().Events)
		}
	}
}

func TestRepairCheaperThanRebuild(t *testing.T) {
	// The headline property of incremental repair: per-event recoloring
	// touches a small fraction of the arcs a rebuild would.
	rng := rand.New(rand.NewSource(4))
	g := graph.ConnectedGNM(60, 180, rng)
	n := mustNetwork(t, g)
	events := 0
	for step := 0; step < 200; step++ {
		u, v := rng.Intn(60), rng.Intn(60)
		if u == v {
			continue
		}
		kind := LinkUp
		if n.Graph().HasEdge(u, v) {
			kind = LinkDown
		}
		if err := n.Apply(Event{Kind: kind, U: u, V: v}); err != nil {
			t.Fatal(err)
		}
		events++
	}
	perEvent := float64(n.Stats().RecoloredArcs+n.Stats().NewArcs) / float64(events)
	rebuildArcs := float64(2 * n.Graph().M())
	if perEvent > rebuildArcs/4 {
		t.Errorf("repair recolors %.1f arcs/event; rebuild would recolor %d — incrementality lost", perEvent, int(rebuildArcs))
	}
	checkValid(t, n, "after churn")
}

func TestInstallRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.GNM(20, 50, rng)
	n := mustNetwork(t, g)
	// Heavy churn tends to grow the frame; a rebuild resets it.
	for step := 0; step < 100; step++ {
		u, v := rng.Intn(20), rng.Intn(20)
		if u == v {
			continue
		}
		kind := LinkUp
		if n.Graph().HasEdge(u, v) {
			kind = LinkDown
		}
		if err := n.Apply(Event{Kind: kind, U: u, V: v}); err != nil {
			t.Fatal(err)
		}
	}
	drifted := n.Slots()
	n.InstallRebuild()
	checkValid(t, n, "after rebuild")
	if n.Slots() > drifted {
		t.Errorf("rebuild made the frame longer: %d -> %d", drifted, n.Slots())
	}
}

// Property: any single event on any valid schedule preserves validity.
func TestSingleEventPreservesValidityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nNodes := 3 + rng.Intn(15)
		g := graph.GNM(nNodes, rng.Intn(nNodes*(nNodes-1)/2+1), rng)
		n, err := New(g, coloring.Greedy(g, nil))
		if err != nil {
			return false
		}
		u, v := rng.Intn(nNodes), rng.Intn(nNodes)
		if u == v {
			return true
		}
		kind := LinkUp
		if n.Graph().HasEdge(u, v) {
			kind = LinkDown
		}
		if err := n.Apply(Event{Kind: kind, U: u, V: v}); err != nil {
			return false
		}
		return coloring.Valid(n.Graph(), n.Assignment())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEventStrings(t *testing.T) {
	if (Event{Kind: LinkUp, U: 1, V: 2}).String() != "link-up{1,2}" {
		t.Error("link event string")
	}
	if (Event{Kind: NodeJoin, U: 3, Peers: []int{1}}).String() != "node-join{3->[1]}" {
		t.Error("join event string")
	}
	if EventKind(99).String() != "invalid" {
		t.Error("invalid kind string")
	}
}

func TestDiffIdenticalIsEmpty(t *testing.T) {
	g := graph.Cycle(6)
	as := coloring.Greedy(g, nil)
	if d := Diff(as, as); len(d) != 0 {
		t.Fatalf("identical schedules diff: %v", d)
	}
}

func TestDiffLocalizedAfterRepair(t *testing.T) {
	// After one link event, only nodes near the event should need new
	// firmware tables.
	rng := rand.New(rand.NewSource(8))
	g := graph.ConnectedGNM(40, 90, rng)
	n := mustNetwork(t, g)
	before := n.Assignment().Clone()
	// Find a non-edge to add.
	var u, v int
	for {
		u, v = rng.Intn(40), rng.Intn(40)
		if u != v && !n.Graph().HasEdge(u, v) {
			break
		}
	}
	if err := n.Apply(Event{Kind: LinkUp, U: u, V: v}); err != nil {
		t.Fatal(err)
	}
	deltas := Diff(before, n.Assignment())
	if len(deltas) == 0 {
		t.Fatal("a link-up must change at least the two endpoints")
	}
	if len(deltas) > 12 {
		t.Errorf("repair touched %d nodes' tables — not localized", len(deltas))
	}
	// The endpoints must appear.
	found := map[int]bool{}
	for _, d := range deltas {
		if !d.Changed() {
			t.Errorf("empty delta emitted for node %d", d.Node)
		}
		found[d.Node] = true
	}
	if !found[u] || !found[v] {
		t.Errorf("endpoints %d,%d missing from deltas %v", u, v, deltas)
	}
}

func TestDiffDetectsRemovals(t *testing.T) {
	g := graph.Path(3)
	old := coloring.Greedy(g, nil)
	n := mustNetwork(t, g)
	if err := n.Apply(Event{Kind: LinkDown, U: 0, V: 1}); err != nil {
		t.Fatal(err)
	}
	deltas := Diff(old, n.Assignment())
	var node0 *NodeDelta
	for i := range deltas {
		if deltas[i].Node == 0 {
			node0 = &deltas[i]
		}
	}
	if node0 == nil || len(node0.TXGone) != 1 || len(node0.RXGone) != 1 {
		t.Fatalf("node 0 should lose one TX and one RX slot: %+v", deltas)
	}
}

func TestRebuildReturnsValidWithoutInstalling(t *testing.T) {
	g := graph.Cycle(8)
	n := mustNetwork(t, g)
	before := n.Slots()
	fresh := n.Rebuild()
	if !coloring.Valid(n.Graph(), fresh) {
		t.Fatal("rebuild invalid")
	}
	if n.Slots() != before {
		t.Fatal("Rebuild must not install")
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: LinkUp, U: 3, V: 7},
		{Kind: LinkDown, U: 0, V: 1},
		{Kind: NodeFail, U: 5},
		{Kind: NodeJoin, U: 2, Peers: []int{1, 4, 6}},
		{Kind: NodeMove, U: 9, Peers: []int{0}},
	}
	data, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	var back []Event
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, back) {
		t.Fatalf("round trip: %v -> %s -> %v", events, data, back)
	}
	// The wire form uses the String() names, not raw ints.
	if !strings.Contains(string(data), `"kind":"link-up"`) {
		t.Fatalf("wire form: %s", data)
	}
}

func TestEventJSONRejectsUnknownKind(t *testing.T) {
	var ev Event
	if err := json.Unmarshal([]byte(`{"kind":"teleport","u":1,"v":2}`), &ev); err == nil {
		t.Fatal("unknown kind should fail to decode")
	}
	if _, err := json.Marshal(Event{Kind: EventKind(42)}); err == nil {
		t.Fatal("invalid kind should fail to encode")
	}
}

func TestParseEventKind(t *testing.T) {
	for k := LinkUp; k <= NodeMove; k++ {
		got, err := ParseEventKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseEventKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseEventKind("nope"); err == nil {
		t.Error("ParseEventKind should reject unknown names")
	}
}
