package dynamic

import (
	"sort"

	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

// CrashEvents translates a fault plan's crash schedule into the topology
// events the maintenance layer understands: each crash becomes a NodeFail
// (the dead sensor's links drop), and each restart becomes a NodeJoin
// re-attaching the sensor to those of its g-neighbors that are alive at
// that moment. Events are ordered by virtual time (ties: node id, crash
// before restart), so replaying them through Network.Apply subjects a live
// schedule to exactly the churn the simulator's fault layer injects — the
// bridge between the two failure models (runtime faults in internal/sim,
// topology repair here).
func CrashEvents(g *graph.Graph, plan *sim.FaultPlan) []Event {
	if plan == nil {
		return nil
	}
	type mark struct {
		at      int64
		node    int
		restart bool
	}
	var marks []mark
	for _, c := range plan.Crashes {
		marks = append(marks, mark{at: c.At, node: c.Node})
		if c.RestartAt > c.At {
			marks = append(marks, mark{at: c.RestartAt, node: c.Node, restart: true})
		}
	}
	sort.Slice(marks, func(i, j int) bool {
		a, b := marks[i], marks[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.node != b.node {
			return a.node < b.node
		}
		return !a.restart && b.restart
	})

	down := make(map[int]bool)
	var out []Event
	for _, m := range marks {
		if m.restart {
			down[m.node] = false
			var peers []int
			for _, u := range g.Neighbors(m.node) {
				if !down[u] {
					peers = append(peers, u)
				}
			}
			out = append(out, Event{Kind: NodeJoin, U: m.node, Peers: peers})
			continue
		}
		down[m.node] = true
		out = append(out, Event{Kind: NodeFail, U: m.node})
	}
	return out
}
