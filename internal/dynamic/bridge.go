package dynamic

import (
	"sort"

	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

// CrashEvents translates a fault plan's crash schedule into the topology
// events the maintenance layer understands: each crash becomes a NodeFail
// (the dead sensor's links drop), and each restart becomes a NodeJoin
// re-attaching the sensor to those of its g-neighbors that are alive at
// that moment. Events are ordered by virtual time (ties: node id), so
// replaying them through Network.Apply subjects a live schedule to exactly
// the churn the simulator's fault layer injects — the bridge between the two
// failure models (runtime faults in internal/sim, topology repair here).
//
// Only *net* state transitions are emitted. A node whose marks cancel out
// inside one virtual-time tick never reaches the maintenance layer: a
// zero-length outage (RestartAt == At — the node crashed and rejoined inside
// one tick, never observed down by the engines) produces no events, and
// back-to-back windows (one outage's restart coinciding with the next
// outage's crash) produce a single NodeFail at the first crash and a single
// NodeJoin at the final restart. Emitting the raw marks instead would
// double-apply the repair — or worse, leave the maintained schedule claiming
// a node is up while the engine still holds it down.
//
// rejoined lists nodes whose bounded outage the protocol itself already
// repaired (core.Result.Rejoin.Returned): their crash/restart pair is
// omitted entirely — the rejoin handshake restored their links and colors
// in-band, so charging the maintenance layer a NodeFail/NodeJoin for them
// would double-count the repair. Such nodes also never count as down when
// computing other restarts' surviving peer sets, since their links never
// left the maintained schedule. Crash-stops are unaffected by rejoined
// (a node that never came back cannot have been reintegrated).
func CrashEvents(g *graph.Graph, plan *sim.FaultPlan, rejoined []int) []Event {
	if plan == nil {
		return nil
	}
	inband := make(map[int]bool, len(rejoined))
	for _, v := range rejoined {
		inband[v] = true
	}
	// Candidate transition times per node: every window edge. The node's
	// engine-visible state at each candidate time comes from the plan itself
	// (CrashedAt), so coincident marks — zero-length windows, a restart
	// meeting the next crash — collapse to their net effect instead of being
	// replayed edge by edge.
	type mark struct {
		at   int64
		node int
	}
	var marks []mark
	for _, c := range plan.Crashes {
		bounded := c.RestartAt > 0 && c.RestartAt >= c.At
		if inband[c.Node] && bounded {
			continue
		}
		marks = append(marks, mark{at: c.At, node: c.Node})
		if bounded {
			marks = append(marks, mark{at: c.RestartAt, node: c.Node})
		}
	}
	sort.Slice(marks, func(i, j int) bool {
		if marks[i].at != marks[j].at {
			return marks[i].at < marks[j].at
		}
		return marks[i].node < marks[j].node
	})

	down := make(map[int]bool)
	var out []Event
	var prev mark
	for i, m := range marks {
		if i > 0 && m == prev {
			continue // coincident edges of adjacent windows: one evaluation
		}
		prev = m
		// An inband node's bounded windows are skipped above, so CrashedAt
		// may disagree with the maintained schedule for them; their only
		// surviving marks are crash-stops, for which it agrees.
		now := plan.CrashedAt(m.node, m.at)
		if down[m.node] == now {
			continue
		}
		down[m.node] = now
		if now {
			out = append(out, Event{Kind: NodeFail, U: m.node})
			continue
		}
		var peers []int
		for _, u := range g.Neighbors(m.node) {
			if !down[u] {
				peers = append(peers, u)
			}
		}
		out = append(out, Event{Kind: NodeJoin, U: m.node, Peers: peers})
	}
	return out
}

// MoveEvents diffs two neighborhood snapshots into the NodeMove events that
// carry a mobility step into the maintenance layer. prev and next report a
// node's neighbor set before and after the step (internal/geom mobility
// traces provide exactly this as a pure function of positions); live masks
// out nodes currently held down by the fault layer — a moving crashed node
// emits no event (its links are already out of the schedule; the rejoin at
// its restart reattaches it wherever it has moved to by then), and down
// nodes are excluded from every emitted peer set. A NodeMove is emitted only
// for nodes whose live neighbor set actually changed; an edge whose other
// endpoint moved away is repaired by that endpoint's own event, so replaying
// the result through Network.Apply performs each link change exactly once.
func MoveEvents(n int, prev, next func(v int) []int, live []bool) []Event {
	alive := func(v int) bool { return live == nil || live[v] }
	liveSet := func(f func(int) []int, v int) []int {
		var out []int
		for _, u := range f(v) {
			if alive(u) {
				out = append(out, u)
			}
		}
		sort.Ints(out)
		return out
	}
	var out []Event
	for v := 0; v < n; v++ {
		if !alive(v) {
			continue
		}
		before, after := liveSet(prev, v), liveSet(next, v)
		if len(before) == len(after) {
			same := true
			for i := range before {
				if before[i] != after[i] {
					same = false
					break
				}
			}
			if same {
				continue
			}
		}
		out = append(out, Event{Kind: NodeMove, U: v, Peers: after})
	}
	return out
}
