package dynamic

import (
	"sort"

	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

// CrashEvents translates a fault plan's crash schedule into the topology
// events the maintenance layer understands: each crash becomes a NodeFail
// (the dead sensor's links drop), and each restart becomes a NodeJoin
// re-attaching the sensor to those of its g-neighbors that are alive at
// that moment. Events are ordered by virtual time (ties: node id, crash
// before restart), so replaying them through Network.Apply subjects a live
// schedule to exactly the churn the simulator's fault layer injects — the
// bridge between the two failure models (runtime faults in internal/sim,
// topology repair here).
//
// rejoined lists nodes whose bounded outage the protocol itself already
// repaired (core.Result.Rejoin.Returned): their crash/restart pair is
// omitted entirely — the rejoin handshake restored their links and colors
// in-band, so charging the maintenance layer a NodeFail/NodeJoin for them
// would double-count the repair. Such nodes also never count as down when
// computing other restarts' surviving peer sets, since their links never
// left the maintained schedule. Crash-stops are unaffected by rejoined
// (a node that never came back cannot have been reintegrated).
func CrashEvents(g *graph.Graph, plan *sim.FaultPlan, rejoined []int) []Event {
	if plan == nil {
		return nil
	}
	inband := make(map[int]bool, len(rejoined))
	for _, v := range rejoined {
		inband[v] = true
	}
	type mark struct {
		at      int64
		node    int
		restart bool
	}
	var marks []mark
	for _, c := range plan.Crashes {
		if inband[c.Node] && c.RestartAt > c.At {
			continue
		}
		marks = append(marks, mark{at: c.At, node: c.Node})
		if c.RestartAt > c.At {
			marks = append(marks, mark{at: c.RestartAt, node: c.Node, restart: true})
		}
	}
	sort.Slice(marks, func(i, j int) bool {
		a, b := marks[i], marks[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.node != b.node {
			return a.node < b.node
		}
		return !a.restart && b.restart
	})

	down := make(map[int]bool)
	var out []Event
	for _, m := range marks {
		if m.restart {
			down[m.node] = false
			var peers []int
			for _, u := range g.Neighbors(m.node) {
				if !down[u] {
					peers = append(peers, u)
				}
			}
			out = append(out, Event{Kind: NodeJoin, U: m.node, Peers: peers})
			continue
		}
		down[m.node] = true
		out = append(out, Event{Kind: NodeFail, U: m.node})
	}
	return out
}
