package dynamic

import (
	"testing"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

func TestCrashEventsReplayKeepsScheduleValid(t *testing.T) {
	g := graph.Grid(4, 4)
	net, err := New(g, coloring.Greedy(g, nil))
	if err != nil {
		t.Fatal(err)
	}
	plan := &sim.FaultPlan{Crashes: []sim.Crash{
		{Node: 5, At: 10},                // crash-stop
		{Node: 9, At: 12, RestartAt: 30}, // outage with recovery
		{Node: 10, At: 12},               // crash-stop while 9 is down
	}}
	events := CrashEvents(g, plan, nil)
	want := []string{"node-fail{5->[]}", "node-fail{9->[]}", "node-fail{10->[]}", "node-join{9->[8 13]}"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %d of them", events, len(want))
	}
	for i, ev := range events {
		if ev.String() != want[i] {
			t.Errorf("event %d = %v, want %v", i, ev, want[i])
		}
	}
	// Node 9's rejoin must exclude dead neighbors 5 and 10 — the surviving
	// peer set at restart time.
	for _, u := range events[3].Peers {
		if u == 5 || u == 10 {
			t.Errorf("restart rejoins dead neighbor %d", u)
		}
	}
	for _, ev := range events {
		if err := net.Apply(ev); err != nil {
			t.Fatalf("apply %v: %v", ev, err)
		}
		if viols := coloring.Verify(net.Graph(), net.Assignment()); len(viols) != 0 {
			t.Fatalf("after %v: schedule invalid: %v", ev, viols[0])
		}
	}
}

func TestCrashEventsSkipsProtocolRejoinedNodes(t *testing.T) {
	g := graph.Grid(4, 4)
	plan := &sim.FaultPlan{Crashes: []sim.Crash{
		{Node: 5, At: 10},                // crash-stop
		{Node: 9, At: 12, RestartAt: 30}, // outage the protocol repaired
		{Node: 6, At: 20, RestartAt: 40}, // outage repaired out-of-band
	}}
	events := CrashEvents(g, plan, []int{9})
	// Node 9's fail/join pair is gone: the protocol already restored its
	// links and colors in-band. Node 5 crash-stopped and node 6's restart
	// was not reintegrated, so both still reach the maintenance layer — and
	// node 6's join sees 9 as alive (its links never left the schedule).
	want := []string{"node-fail{5->[]}", "node-fail{6->[]}", "node-join{6->[2 7 10]}"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %d of them", events, len(want))
	}
	for i, ev := range events {
		if ev.String() != want[i] {
			t.Errorf("event %d = %v, want %v", i, ev, want[i])
		}
	}
	// A crash-stop listed as rejoined is impossible; the bridge must ignore
	// the claim rather than drop the NodeFail.
	events = CrashEvents(g, plan, []int{5, 9})
	if len(events) != len(want) || events[0].String() != want[0] {
		t.Errorf("crash-stop in rejoined list altered events: %v", events)
	}
}

func TestCrashEventsZeroLengthOutageEmitsNothing(t *testing.T) {
	g := graph.Grid(3, 3)
	// Node 4 crashes and rejoins inside tick 7: the engines never observe it
	// down, so the maintenance layer must not see a Fail (the historical bug
	// emitted Fail-only, permanently dropping the node's links). Node 2's
	// ordinary outage must be unaffected.
	plan := &sim.FaultPlan{Crashes: []sim.Crash{
		{Node: 4, At: 7, RestartAt: 7},
		{Node: 2, At: 5, RestartAt: 9},
	}}
	events := CrashEvents(g, plan, nil)
	want := []string{"node-fail{2->[]}", "node-join{2->[1 5]}"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i, ev := range events {
		if ev.String() != want[i] {
			t.Errorf("event %d = %v, want %v", i, ev, want[i])
		}
	}
}

func TestCrashEventsBackToBackWindowsNetTransitions(t *testing.T) {
	g := graph.Grid(3, 3)
	// Node 4's restart at 5 coincides with its next crash at 5: the node is
	// continuously down over [2,9), so the bridge must emit one Fail at 2 and
	// one Join at 9 — not a spurious Join/Fail pair at 5 that would leave the
	// maintained schedule disagreeing with the engine about the node's state.
	plan := &sim.FaultPlan{Crashes: []sim.Crash{
		{Node: 4, At: 2, RestartAt: 5},
		{Node: 4, At: 5, RestartAt: 9},
	}}
	if err := plan.Validate(g.N()); err != nil {
		t.Fatal(err)
	}
	events := CrashEvents(g, plan, nil)
	want := []string{"node-fail{4->[]}", "node-join{4->[1 3 5 7]}"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i, ev := range events {
		if ev.String() != want[i] {
			t.Errorf("event %d = %v, want %v", i, ev, want[i])
		}
	}
	// Replaying through the maintenance layer must keep the schedule valid.
	net, err := New(g, coloring.Greedy(g, nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := net.Apply(ev); err != nil {
			t.Fatalf("apply %v: %v", ev, err)
		}
	}
	if viols := coloring.Verify(net.Graph(), net.Assignment()); len(viols) != 0 {
		t.Fatalf("schedule invalid after replay: %v", viols[0])
	}
}

func TestMoveEventsDiffsLiveNeighborhoods(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	net, err := New(g, coloring.Greedy(g, nil))
	if err != nil {
		t.Fatal(err)
	}
	// Node 3 moves from the end of the path to sit next to 0 and 1.
	prevN := map[int][]int{0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2}}
	nextN := map[int][]int{0: {1, 3}, 1: {0, 2, 3}, 2: {1}, 3: {0, 1}}
	at := func(m map[int][]int) func(int) []int {
		return func(v int) []int { return m[v] }
	}
	events := MoveEvents(4, at(prevN), at(nextN), nil)
	// Every node's neighborhood changed, so each emits one NodeMove; replay
	// performs each link change exactly once (Apply rejects double adds).
	if len(events) != 4 {
		t.Fatalf("events = %v, want 4 NodeMoves", events)
	}
	for _, ev := range events {
		if ev.Kind != NodeMove {
			t.Fatalf("unexpected event %v", ev)
		}
		if err := net.Apply(ev); err != nil {
			t.Fatalf("apply %v: %v", ev, err)
		}
	}
	if viols := coloring.Verify(net.Graph(), net.Assignment()); len(viols) != 0 {
		t.Fatalf("schedule invalid after move replay: %v", viols[0])
	}
	if !net.Graph().HasEdge(0, 3) || !net.Graph().HasEdge(1, 3) || net.Graph().HasEdge(2, 3) {
		t.Errorf("topology after move wrong: %v", net.Graph())
	}

	// A crashed node moving emits nothing, and its links are masked out of
	// every peer set.
	live := []bool{true, true, true, false}
	events = MoveEvents(4, at(prevN), at(nextN), live)
	for _, ev := range events {
		if ev.U == 3 {
			t.Errorf("down node emitted %v", ev)
		}
		for _, u := range ev.Peers {
			if u == 3 {
				t.Errorf("down node appears in peer set of %v", ev)
			}
		}
	}
}
