package dynamic

import (
	"testing"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

func TestCrashEventsReplayKeepsScheduleValid(t *testing.T) {
	g := graph.Grid(4, 4)
	net, err := New(g, coloring.Greedy(g, nil))
	if err != nil {
		t.Fatal(err)
	}
	plan := &sim.FaultPlan{Crashes: []sim.Crash{
		{Node: 5, At: 10},                // crash-stop
		{Node: 9, At: 12, RestartAt: 30}, // outage with recovery
		{Node: 10, At: 12},               // crash-stop while 9 is down
	}}
	events := CrashEvents(g, plan)
	want := []string{"node-fail{5->[]}", "node-fail{9->[]}", "node-fail{10->[]}", "node-join{9->[8 13]}"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %d of them", events, len(want))
	}
	for i, ev := range events {
		if ev.String() != want[i] {
			t.Errorf("event %d = %v, want %v", i, ev, want[i])
		}
	}
	// Node 9's rejoin must exclude dead neighbors 5 and 10 — the surviving
	// peer set at restart time.
	for _, u := range events[3].Peers {
		if u == 5 || u == 10 {
			t.Errorf("restart rejoins dead neighbor %d", u)
		}
	}
	for _, ev := range events {
		if err := net.Apply(ev); err != nil {
			t.Fatalf("apply %v: %v", ev, err)
		}
		if viols := coloring.Verify(net.Graph(), net.Assignment()); len(viols) != 0 {
			t.Fatalf("after %v: schedule invalid: %v", ev, viols[0])
		}
	}
}
