package dynamic

import (
	"testing"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

func TestCrashEventsReplayKeepsScheduleValid(t *testing.T) {
	g := graph.Grid(4, 4)
	net, err := New(g, coloring.Greedy(g, nil))
	if err != nil {
		t.Fatal(err)
	}
	plan := &sim.FaultPlan{Crashes: []sim.Crash{
		{Node: 5, At: 10},                // crash-stop
		{Node: 9, At: 12, RestartAt: 30}, // outage with recovery
		{Node: 10, At: 12},               // crash-stop while 9 is down
	}}
	events := CrashEvents(g, plan, nil)
	want := []string{"node-fail{5->[]}", "node-fail{9->[]}", "node-fail{10->[]}", "node-join{9->[8 13]}"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %d of them", events, len(want))
	}
	for i, ev := range events {
		if ev.String() != want[i] {
			t.Errorf("event %d = %v, want %v", i, ev, want[i])
		}
	}
	// Node 9's rejoin must exclude dead neighbors 5 and 10 — the surviving
	// peer set at restart time.
	for _, u := range events[3].Peers {
		if u == 5 || u == 10 {
			t.Errorf("restart rejoins dead neighbor %d", u)
		}
	}
	for _, ev := range events {
		if err := net.Apply(ev); err != nil {
			t.Fatalf("apply %v: %v", ev, err)
		}
		if viols := coloring.Verify(net.Graph(), net.Assignment()); len(viols) != 0 {
			t.Fatalf("after %v: schedule invalid: %v", ev, viols[0])
		}
	}
}

func TestCrashEventsSkipsProtocolRejoinedNodes(t *testing.T) {
	g := graph.Grid(4, 4)
	plan := &sim.FaultPlan{Crashes: []sim.Crash{
		{Node: 5, At: 10},                // crash-stop
		{Node: 9, At: 12, RestartAt: 30}, // outage the protocol repaired
		{Node: 6, At: 20, RestartAt: 40}, // outage repaired out-of-band
	}}
	events := CrashEvents(g, plan, []int{9})
	// Node 9's fail/join pair is gone: the protocol already restored its
	// links and colors in-band. Node 5 crash-stopped and node 6's restart
	// was not reintegrated, so both still reach the maintenance layer — and
	// node 6's join sees 9 as alive (its links never left the schedule).
	want := []string{"node-fail{5->[]}", "node-fail{6->[]}", "node-join{6->[2 7 10]}"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %d of them", events, len(want))
	}
	for i, ev := range events {
		if ev.String() != want[i] {
			t.Errorf("event %d = %v, want %v", i, ev, want[i])
		}
	}
	// A crash-stop listed as rejoined is impossible; the bridge must ignore
	// the claim rather than drop the NodeFail.
	events = CrashEvents(g, plan, []int{5, 9})
	if len(events) != len(want) || events[0].String() != want[0] {
		t.Errorf("crash-stop in rejoined list altered events: %v", events)
	}
}
