// Package dynamic implements the paper's future-work direction (Section 9):
// fault-tolerant maintenance of an FDLSP schedule under topology churn —
// sensors joining, failing, moving, links appearing and disappearing. The
// repair is local: only arcs whose feasibility is actually affected are
// recolored, using the same distance-2 knowledge the distributed algorithms
// use, and the repair cost (recolored arcs, touched nodes — a proxy for
// messages) is accounted so it can be compared against rebuilding the
// schedule from scratch.
//
// Soundness rests on two observations about the conflict predicate:
//
//   - removing an edge only removes conflicts, so link-down events keep the
//     remaining schedule feasible without any recoloring;
//   - recoloring one arc with a color feasible against every currently
//     colored conflicting arc can never invalidate other arcs, so repair
//     never cascades: the violated pairs introduced by a link-up event are
//     each fixed by recoloring one arc of the pair.
package dynamic

import (
	"encoding/json"
	"fmt"
	"sort"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
)

// EventKind discriminates topology events.
type EventKind int

const (
	// LinkUp adds the edge {U,V}.
	LinkUp EventKind = iota
	// LinkDown removes the edge {U,V}.
	LinkDown
	// NodeFail removes every link of node U (the sensor died).
	NodeFail
	// NodeJoin attaches node U to the neighbors listed in Peers.
	NodeJoin
	// NodeMove replaces node U's neighborhood with Peers (the sensor moved:
	// stale links drop, new links form).
	NodeMove
)

func (k EventKind) String() string {
	switch k {
	case LinkUp:
		return "link-up"
	case LinkDown:
		return "link-down"
	case NodeFail:
		return "node-fail"
	case NodeJoin:
		return "node-join"
	case NodeMove:
		return "node-move"
	default:
		return "invalid"
	}
}

// ParseEventKind maps the wire names ("link-up", "node-move", ...) back to
// their EventKind — the inverse of EventKind.String.
func ParseEventKind(s string) (EventKind, error) {
	for k := LinkUp; k <= NodeMove; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("dynamic: unknown event kind %q", s)
}

// Event is one topology change.
type Event struct {
	Kind  EventKind
	U, V  int
	Peers []int // NodeJoin / NodeMove
}

// jsonEvent is Event's wire form: the kind travels as its String name so
// clients of the session API write {"kind": "link-up", "u": 3, "v": 7}
// rather than opaque enum numbers.
type jsonEvent struct {
	Kind  string `json:"kind"`
	U     int    `json:"u"`
	V     int    `json:"v,omitempty"`
	Peers []int  `json:"peers,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (e Event) MarshalJSON() ([]byte, error) {
	switch e.Kind {
	case LinkUp, LinkDown, NodeFail, NodeJoin, NodeMove:
	default:
		return nil, fmt.Errorf("dynamic: cannot marshal invalid event kind %d", int(e.Kind))
	}
	return json.Marshal(jsonEvent{Kind: e.Kind.String(), U: e.U, V: e.V, Peers: e.Peers})
}

// UnmarshalJSON implements json.Unmarshaler; an unknown kind is an error.
func (e *Event) UnmarshalJSON(data []byte) error {
	var je jsonEvent
	if err := json.Unmarshal(data, &je); err != nil {
		return err
	}
	k, err := ParseEventKind(je.Kind)
	if err != nil {
		return err
	}
	*e = Event{Kind: k, U: je.U, V: je.V, Peers: je.Peers}
	return nil
}

func (e Event) String() string {
	switch e.Kind {
	case LinkUp, LinkDown:
		return fmt.Sprintf("%v{%d,%d}", e.Kind, e.U, e.V)
	default:
		return fmt.Sprintf("%v{%d->%v}", e.Kind, e.U, e.Peers)
	}
}

// RepairStats accumulates maintenance cost across events.
type RepairStats struct {
	Events        int
	NewArcs       int64 // arcs colored because links appeared
	RecoloredArcs int64 // previously colored arcs that had to change
	DroppedArcs   int64 // arcs removed with their links
	TouchedNodes  int64 // nodes within distance 2 of a repair (message proxy)
}

// Network is a live schedule under maintenance.
type Network struct {
	g     *graph.Graph
	as    coloring.Assignment
	stats RepairStats
}

// New wraps a valid schedule for maintenance. The graph is cloned; the
// assignment is copied.
func New(g *graph.Graph, as coloring.Assignment) (*Network, error) {
	if viols := coloring.Verify(g, as); len(viols) != 0 {
		return nil, fmt.Errorf("dynamic: initial schedule invalid: %v", viols[0])
	}
	return &Network{g: g.Clone(), as: as.Clone()}, nil
}

// Graph returns the current topology (read-only by convention).
func (n *Network) Graph() *graph.Graph { return n.g }

// Assignment returns the current schedule (read-only by convention).
func (n *Network) Assignment() coloring.Assignment { return n.as }

// Slots returns the current frame length.
func (n *Network) Slots() int { return n.as.NumColors() }

// Stats returns the accumulated repair cost.
func (n *Network) Stats() RepairStats { return n.stats }

// Apply performs one topology event and repairs the schedule locally. The
// schedule is feasible for the updated topology when Apply returns.
func (n *Network) Apply(ev Event) error {
	n.stats.Events++
	switch ev.Kind {
	case LinkUp:
		return n.linkUp(ev.U, ev.V)
	case LinkDown:
		return n.linkDown(ev.U, ev.V)
	case NodeFail:
		n.g.Neighbors(ev.U) // bounds check
		for _, u := range n.g.Neighbors(ev.U) {
			if err := n.linkDown(ev.U, u); err != nil {
				return err
			}
		}
		return nil
	case NodeJoin:
		for _, u := range ev.Peers {
			if err := n.linkUp(ev.U, u); err != nil {
				return err
			}
		}
		return nil
	case NodeMove:
		want := make(map[int]bool, len(ev.Peers))
		for _, u := range ev.Peers {
			want[u] = true
		}
		for _, u := range n.g.Neighbors(ev.U) {
			if !want[u] {
				if err := n.linkDown(ev.U, u); err != nil {
					return err
				}
			}
		}
		for _, u := range ev.Peers {
			if !n.g.HasEdge(ev.U, u) {
				if err := n.linkUp(ev.U, u); err != nil {
					return err
				}
			}
		}
		return nil
	default:
		return fmt.Errorf("dynamic: unknown event kind %v", ev.Kind)
	}
}

// linkDown removes {u,v} and the colors of its two arcs. Removing
// adjacency removes conflicts, so the rest of the schedule stays feasible.
func (n *Network) linkDown(u, v int) error {
	if u == v {
		return fmt.Errorf("dynamic: self link {%d,%d}", u, v)
	}
	if !n.g.HasEdge(u, v) {
		return fmt.Errorf("dynamic: link-down on missing edge {%d,%d}", u, v)
	}
	n.g.RemoveEdge(u, v)
	delete(n.as, graph.Arc{From: u, To: v})
	delete(n.as, graph.Arc{From: v, To: u})
	n.stats.DroppedArcs += 2
	n.touch(u, v)
	return nil
}

// linkUp inserts {u,v}, repairs the schedule violations the new adjacency
// introduces, and colors the two new arcs.
func (n *Network) linkUp(u, v int) error {
	if u == v {
		return fmt.Errorf("dynamic: self link {%d,%d}", u, v)
	}
	if n.g.HasEdge(u, v) {
		return fmt.Errorf("dynamic: link-up on existing edge {%d,%d}", u, v)
	}
	n.g.AddEdge(u, v)
	n.touch(u, v)

	// New conflicts only arise from the new adjacency: a receiver at u now
	// hears a transmitter at v (and vice versa). Violated pairs are
	// (x,u)/(v,z) and (x,v)/(u,z) sharing a color.
	type pair struct{ a, b graph.Arc }
	var violated []pair
	collect := func(recvAt, sendAt int) {
		for _, a := range n.g.InArcs(recvAt) {
			ca := n.as[a]
			if ca == coloring.None {
				continue
			}
			for _, b := range n.g.OutArcs(sendAt) {
				if a == b || a == b.Reverse() {
					continue
				}
				if n.as[b] == ca && coloring.Conflict(n.g, a, b) {
					violated = append(violated, pair{a, b})
				}
			}
		}
	}
	collect(u, v)
	collect(v, u)

	for _, p := range violated {
		// Both may have been repaired already by an earlier pair.
		if n.as[p.a] != n.as[p.b] || n.as[p.a] == coloring.None {
			continue
		}
		// Recolor the arc with the larger (tail, head): a deterministic,
		// locally computable choice.
		victim := p.a
		if less(p.a, p.b) {
			victim = p.b
		}
		delete(n.as, victim)
		coloring.AssignGreedyLocal(n.g, n.as, []graph.Arc{victim})
		n.stats.RecoloredArcs++
		n.touch(victim.From, victim.To)
	}

	// Finally color the two new arcs.
	newArcs := []graph.Arc{{From: u, To: v}, {From: v, To: u}}
	colored := coloring.AssignGreedyLocal(n.g, n.as, newArcs)
	n.stats.NewArcs += int64(len(colored))
	return nil
}

func less(a, b graph.Arc) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	return a.To < b.To
}

// touch accounts the nodes participating in a repair: everything within
// distance 2 of the affected endpoints (the nodes that must exchange or
// update distance-2 color knowledge).
func (n *Network) touch(u, v int) {
	seen := map[int]struct{}{u: {}, v: {}}
	for _, x := range []int{u, v} {
		for _, w := range n.g.Within(x, 2) {
			seen[w] = struct{}{}
		}
	}
	n.stats.TouchedNodes += int64(len(seen))
}

// Rebuild recomputes the whole schedule from scratch with the greedy
// reference colorer — the non-incremental baseline the repair cost is
// compared against. It returns the fresh assignment without installing it.
func (n *Network) Rebuild() coloring.Assignment {
	return coloring.Greedy(n.g, nil)
}

// InstallRebuild replaces the maintained schedule by a fresh greedy
// recomputation (e.g. after frame-length drift exceeds a threshold).
func (n *Network) InstallRebuild() {
	n.as = coloring.Greedy(n.g, nil)
}

// NodeDelta lists the slot-table changes one node must apply after a
// repair: deployment-wise, only these nodes need re-flashing.
type NodeDelta struct {
	Node    int
	TXAdded map[int]int // slot -> new receiver
	TXGone  []int       // slots no longer used for transmission
	RXAdded map[int]int // slot -> new transmitter
	RXGone  []int
}

// Changed reports whether the delta is non-empty.
func (d NodeDelta) Changed() bool {
	return len(d.TXAdded)+len(d.TXGone)+len(d.RXAdded)+len(d.RXGone) > 0
}

// Diff compares two assignments and returns, per affected node, the
// transmit/receive timetable changes — the minimal re-deployment set after
// incremental repair (nodes absent from the result keep their firmware
// schedule untouched).
func Diff(old, new coloring.Assignment) []NodeDelta {
	type key struct {
		node int
		slot int
	}
	oldTX, newTX := map[key]int{}, map[key]int{}
	oldRX, newRX := map[key]int{}, map[key]int{}
	nodes := map[int]struct{}{}
	for a, c := range old {
		oldTX[key{a.From, c}] = a.To
		oldRX[key{a.To, c}] = a.From
		nodes[a.From] = struct{}{}
		nodes[a.To] = struct{}{}
	}
	for a, c := range new {
		newTX[key{a.From, c}] = a.To
		newRX[key{a.To, c}] = a.From
		nodes[a.From] = struct{}{}
		nodes[a.To] = struct{}{}
	}
	ids := make([]int, 0, len(nodes))
	for v := range nodes {
		ids = append(ids, v)
	}
	sort.Ints(ids)
	var out []NodeDelta
	for _, v := range ids {
		d := NodeDelta{Node: v, TXAdded: map[int]int{}, RXAdded: map[int]int{}}
		for k, to := range newTX {
			if k.node == v && oldTX[k] != to {
				d.TXAdded[k.slot] = to
			}
		}
		for k := range oldTX {
			if k.node == v {
				if _, ok := newTX[k]; !ok {
					d.TXGone = append(d.TXGone, k.slot)
				}
				// A changed receiver in a kept slot is already in TXAdded.
			}
		}
		for k, from := range newRX {
			if k.node == v && oldRX[k] != from {
				d.RXAdded[k.slot] = from
			}
		}
		for k := range oldRX {
			if k.node == v {
				if _, ok := newRX[k]; !ok {
					d.RXGone = append(d.RXGone, k.slot)
				}
			}
		}
		sort.Ints(d.TXGone)
		sort.Ints(d.RXGone)
		if d.Changed() {
			out = append(out, d)
		}
	}
	return out
}
