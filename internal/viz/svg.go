// Package viz renders sensor networks and TDMA schedules as SVG using only
// the standard library: the field layout (nodes and links), a single slot's
// concurrent transmissions (arrows), and a whole frame as a strip of slot
// panels. cmd/fdlsp writes these with the -svg flag.
package viz

import (
	"fmt"
	"math"
	"strings"

	"fdlsp/internal/geom"
	"fdlsp/internal/graph"
	"fdlsp/internal/sched"
)

// Style bundles rendering options.
type Style struct {
	Scale      float64 // pixels per coordinate unit (default 40)
	NodeRadius float64 // pixels (default 6)
	Margin     float64 // pixels (default 20)
	Labels     bool    // draw node IDs
}

func (st Style) withDefaults() Style {
	if st.Scale == 0 {
		st.Scale = 40
	}
	if st.NodeRadius == 0 {
		st.NodeRadius = 6
	}
	if st.Margin == 0 {
		st.Margin = 20
	}
	return st
}

// svgDoc accumulates SVG elements.
type svgDoc struct {
	w, h float64
	b    strings.Builder
}

func (d *svgDoc) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&d.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

func (d *svgDoc) circle(x, y, r float64, fill string) {
	fmt.Fprintf(&d.b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="black" stroke-width="0.5"/>`+"\n", x, y, r, fill)
}

func (d *svgDoc) text(x, y float64, size float64, s string) {
	fmt.Fprintf(&d.b, `<text x="%.1f" y="%.1f" font-size="%.1f" font-family="sans-serif">%s</text>`+"\n", x, y, size, s)
}

func (d *svgDoc) arrow(x1, y1, x2, y2 float64, stroke string, width float64) {
	d.line(x1, y1, x2, y2, stroke, width)
	// Arrowhead: small triangle at 85% of the way.
	dx, dy := x2-x1, y2-y1
	l := math.Hypot(dx, dy)
	if l == 0 {
		return
	}
	ux, uy := dx/l, dy/l
	tipX, tipY := x1+dx*0.85, y1+dy*0.85
	size := 5.0
	leftX := tipX - size*ux + size*0.5*uy
	leftY := tipY - size*uy - size*0.5*ux
	rightX := tipX - size*ux - size*0.5*uy
	rightY := tipY - size*uy + size*0.5*ux
	fmt.Fprintf(&d.b, `<polygon points="%.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="%s"/>`+"\n",
		tipX, tipY, leftX, leftY, rightX, rightY, stroke)
}

func (d *svgDoc) String() string {
	return fmt.Sprintf(`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		d.w, d.h, d.w, d.h) + `<rect width="100%" height="100%" fill="white"/>` + "\n" + d.b.String() + "</svg>\n"
}

// project maps field coordinates to pixels.
func project(pts []geom.Point, st Style) (func(geom.Point) (float64, float64), float64, float64) {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if len(pts) == 0 {
		minX, minY, maxX, maxY = 0, 0, 1, 1
	}
	w := (maxX-minX)*st.Scale + 2*st.Margin
	h := (maxY-minY)*st.Scale + 2*st.Margin
	return func(p geom.Point) (float64, float64) {
		return (p.X-minX)*st.Scale + st.Margin, (p.Y-minY)*st.Scale + st.Margin
	}, w, h
}

// Network renders the field: sensors as dots, links as gray lines.
func Network(g *graph.Graph, pts []geom.Point, st Style) string {
	st = st.withDefaults()
	proj, w, h := project(pts, st)
	doc := &svgDoc{w: w, h: h}
	for _, e := range g.Edges() {
		x1, y1 := proj(pts[e.U])
		x2, y2 := proj(pts[e.V])
		doc.line(x1, y1, x2, y2, "#bbbbbb", 1)
	}
	for v, p := range pts {
		x, y := proj(p)
		doc.circle(x, y, st.NodeRadius, "#3b6ea5")
		if st.Labels {
			doc.text(x+st.NodeRadius, y-st.NodeRadius, 10, fmt.Sprintf("%d", v))
		}
	}
	return doc.String()
}

// Slot renders one TDMA slot: idle links gray, the slot's transmissions as
// colored arrows from transmitter to receiver.
func Slot(g *graph.Graph, pts []geom.Point, s *sched.Schedule, slot int, st Style) (string, error) {
	if slot < 1 || slot > s.FrameLength {
		return "", fmt.Errorf("viz: slot %d outside frame [1,%d]", slot, s.FrameLength)
	}
	st = st.withDefaults()
	proj, w, h := project(pts, st)
	doc := &svgDoc{w: w, h: h}
	for _, e := range g.Edges() {
		x1, y1 := proj(pts[e.U])
		x2, y2 := proj(pts[e.V])
		doc.line(x1, y1, x2, y2, "#dddddd", 1)
	}
	for _, a := range s.Slots[slot-1] {
		x1, y1 := proj(pts[a.From])
		x2, y2 := proj(pts[a.To])
		doc.arrow(x1, y1, x2, y2, "#c0392b", 2)
	}
	for v, p := range pts {
		x, y := proj(p)
		fill := "#3b6ea5"
		if _, tx := s.NodeTX[v][slot]; tx {
			fill = "#c0392b" // transmitting
		} else if _, rx := s.NodeRX[v][slot]; rx {
			fill = "#27ae60" // receiving
		}
		doc.circle(x, y, st.NodeRadius, fill)
		if st.Labels {
			doc.text(x+st.NodeRadius, y-st.NodeRadius, 10, fmt.Sprintf("%d", v))
		}
	}
	doc.text(st.Margin, h-4, 12, fmt.Sprintf("slot %d/%d — %d transmissions", slot, s.FrameLength, len(s.Slots[slot-1])))
	return doc.String(), nil
}

// Frame renders the whole schedule as a horizontal strip of slot panels
// (at most maxSlots panels; 0 means all).
func Frame(g *graph.Graph, pts []geom.Point, s *sched.Schedule, maxSlots int, st Style) (string, error) {
	st = st.withDefaults()
	n := s.FrameLength
	if maxSlots > 0 && n > maxSlots {
		n = maxSlots
	}
	if n == 0 {
		return Network(g, pts, st), nil
	}
	_, w, h := project(pts, st)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		w*float64(n), h, w*float64(n), h)
	for i := 1; i <= n; i++ {
		panel, err := Slot(g, pts, s, i, st)
		if err != nil {
			return "", err
		}
		// Strip the outer <svg> wrapper and translate the panel.
		inner := panel
		if idx := strings.Index(inner, ">"); idx >= 0 {
			inner = inner[idx+1:]
		}
		inner = strings.TrimSuffix(strings.TrimSpace(inner), "</svg>")
		fmt.Fprintf(&b, `<g transform="translate(%.0f,0)">`+"\n%s</g>\n", w*float64(i-1), inner)
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// SlotHistogram renders frame occupancy as a bar chart (transmissions per
// slot) — a quick visual of how evenly the schedule packs the frame.
func SlotHistogram(s *sched.Schedule) string {
	const barW, maxH, margin = 8.0, 120.0, 20.0
	max := 1
	for _, slot := range s.Slots {
		if len(slot) > max {
			max = len(slot)
		}
	}
	w := margin*2 + barW*float64(s.FrameLength)
	h := maxH + margin*2
	doc := &svgDoc{w: w, h: h}
	for i, slot := range s.Slots {
		bh := maxH * float64(len(slot)) / float64(max)
		x := margin + float64(i)*barW
		fmt.Fprintf(&doc.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#3b6ea5"/>`+"\n",
			x, margin+maxH-bh, barW-1, bh)
	}
	doc.text(margin, margin-6, 11, fmt.Sprintf("transmissions per slot (max %d, frame %d)", max, s.FrameLength))
	return doc.String()
}
