package viz

import (
	"encoding/xml"
	"math/rand"
	"strings"
	"testing"

	"fdlsp/internal/coloring"
	"fdlsp/internal/geom"
	"fdlsp/internal/sched"
)

func testNetwork(tb testing.TB) (*sched.Schedule, []geom.Point, int, int) {
	tb.Helper()
	rng := rand.New(rand.NewSource(1))
	g, pts := geom.RandomUDG(30, 6, 1.5, rng)
	s, err := sched.Build(g, coloring.Greedy(g, nil))
	if err != nil {
		tb.Fatal(err)
	}
	return s, pts, g.N(), g.M()
}

// wellFormed checks the output parses as XML.
func wellFormed(tb testing.TB, svg string) {
	tb.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			tb.Fatalf("SVG not well-formed: %v", err)
		}
	}
}

func TestNetworkRendering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, pts := geom.RandomUDG(25, 6, 1.5, rng)
	svg := Network(g, pts, Style{Labels: true})
	wellFormed(t, svg)
	if got := strings.Count(svg, "<circle"); got != g.N() {
		t.Errorf("%d circles for %d nodes", got, g.N())
	}
	if got := strings.Count(svg, "<line"); got != g.M() {
		t.Errorf("%d lines for %d edges", got, g.M())
	}
	if got := strings.Count(svg, "<text"); got != g.N() {
		t.Errorf("%d labels for %d nodes", got, g.N())
	}
}

func TestSlotRendering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, pts := geom.RandomUDG(25, 6, 1.5, rng)
	s, err := sched.Build(g, coloring.Greedy(g, nil))
	if err != nil {
		t.Fatal(err)
	}
	if s.FrameLength == 0 {
		t.Skip("empty frame")
	}
	svg, err := Slot(g, pts, s, 1, Style{})
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	if got := strings.Count(svg, "<polygon"); got != len(s.Slots[0]) {
		t.Errorf("%d arrowheads for %d transmissions", got, len(s.Slots[0]))
	}
	if _, err := Slot(g, pts, s, 0, Style{}); err == nil {
		t.Error("slot 0 should be rejected")
	}
	if _, err := Slot(g, pts, s, s.FrameLength+1, Style{}); err == nil {
		t.Error("out-of-frame slot should be rejected")
	}
}

func TestFrameStrip(t *testing.T) {
	s, pts, _, _ := testNetwork(t)
	rng := rand.New(rand.NewSource(1))
	g, _ := geom.RandomUDG(30, 6, 1.5, rng)
	svg, err := Frame(g, pts, s, 3, Style{})
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	if got := strings.Count(svg, "<g transform"); got != 3 {
		t.Errorf("%d panels, want 3", got)
	}
}

func TestSlotHistogram(t *testing.T) {
	s, _, _, _ := testNetwork(t)
	svg := SlotHistogram(s)
	wellFormed(t, svg)
	if got := strings.Count(svg, "<rect"); got != s.FrameLength+1 { // + background
		t.Errorf("%d bars for %d slots", got-1, s.FrameLength)
	}
}
