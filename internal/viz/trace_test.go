package viz

import (
	"strings"
	"testing"

	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

func TestTimelineRendersFaultsAndCrashes(t *testing.T) {
	g := graph.Path(4)
	rec := &sim.Recorder{}
	eng := sim.NewSyncEngine(g, 1, func(id int) sim.SyncNode {
		return syncStep(func(env *sim.SyncEnv, inbox []sim.Message) bool {
			if env.Round < 6 {
				env.Broadcast("beat")
			}
			return env.Round >= 6
		})
	})
	eng.Trace = rec
	eng.Fault = &sim.FaultPlan{
		Seed:    7,
		Loss:    0.4,
		Dup:     0.4,
		Crashes: []sim.Crash{{Node: 1, At: 2, RestartAt: 4}, {Node: 3, At: 3}},
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	svg := Timeline(rec.Events(), g.N(), Style{})
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatal("not an SVG document")
	}
	// The restart closes node 1's outage band; node 3's crash-stop leaves an
	// open band to the right edge — two bands total.
	if got := strings.Count(svg, `fill-opacity="0.15"`); got != 2 {
		t.Errorf("outage bands = %d, want 2", got)
	}
	if !strings.Contains(svg, `fill="#c0392b"`) {
		t.Error("missing crash marker")
	}
	if !strings.Contains(svg, `fill="#27ae60"`) {
		t.Error("missing restart marker")
	}
	if !strings.Contains(svg, `stroke="#e67e22"`) {
		t.Error("missing duplicate tick despite 40% duplication")
	}
}

func TestTimelineThinsDenseTraces(t *testing.T) {
	var events []sim.Event
	for i := 0; i < 3000; i++ {
		events = append(events, sim.Event{Kind: sim.EventDeliver, Time: int64(i + 1), From: 0, To: 1})
	}
	svg := Timeline(events, 2, Style{})
	if !strings.Contains(svg, "deliveries hidden") {
		t.Error("dense trace should hide delivery lines")
	}
	if strings.Count(svg, `stroke="#3b6ea5"`) != 0 {
		t.Error("delivery lines drawn despite thinning")
	}
}

type syncStep func(*sim.SyncEnv, []sim.Message) bool

func (f syncStep) Step(env *sim.SyncEnv, in []sim.Message) bool { return f(env, in) }
