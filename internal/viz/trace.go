package viz

import (
	"fmt"

	"fdlsp/internal/sim"
)

// Timeline renders a recorded event trace as a message-sequence chart: one
// horizontal lane per node over virtual time, deliveries as slanted
// sender-to-receiver lines, fault-dropped messages as red crosses,
// duplicated deliveries as orange ticks, and node outages as shaded bands
// opened by a crash mark and closed by a restart mark (or running to the
// right edge for crash-stop failures). Failure-detector verdicts draw as
// triangles on the lane of the endpoint that issued them: downward red for
// a PeerDown give-up, upward green for the PeerUp rescind — a red triangle
// with no green sequel is a false partition the run never healed. It is the
// visual companion of the sim.FaultPlan layer: one glance shows where the
// plan hit the run.
//
// Dense traces stay readable by thinning: when the trace holds more than
// maxDeliveries delivery events, only fault and lifecycle events are drawn
// over the lanes. Pass n as the node count of the traced run.
func Timeline(events []sim.Event, n int, st Style) string {
	st = st.withDefaults()
	const laneH, leftPad, width = 16.0, 34.0, 900.0
	maxT := int64(1)
	for _, e := range events {
		if e.Time > maxT {
			maxT = e.Time
		}
	}
	h := st.Margin*2 + laneH*float64(n) + 16
	w := leftPad + width + st.Margin
	px := func(t int64) float64 { return leftPad + width*float64(t)/float64(maxT) }
	py := func(v int) float64 { return st.Margin + laneH*float64(v) + laneH/2 }
	doc := &svgDoc{w: w, h: h}

	// Outage bands first, so everything else draws on top. A crash opens a
	// band on the node's lane; the matching restart (if any) closes it.
	open := make(map[int]int64)
	band := func(v int, from, to int64) {
		fmt.Fprintf(&doc.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#c0392b" fill-opacity="0.15"/>`+"\n",
			px(from), py(v)-laneH/2, px(to)-px(from), laneH)
	}
	for _, e := range events {
		switch e.Kind {
		case sim.EventNodeCrash:
			open[e.From] = e.Time
		case sim.EventNodeRestart:
			if from, ok := open[e.From]; ok {
				band(e.From, from, e.Time)
				delete(open, e.From)
			}
		}
	}
	for v, from := range open {
		band(v, from, maxT)
	}

	for v := 0; v < n; v++ {
		doc.line(leftPad, py(v), leftPad+width, py(v), "#dddddd", 1)
		doc.text(2, py(v)+3, 9, fmt.Sprintf("%d", v))
	}

	const maxDeliveries = 2000
	deliveries := 0
	for _, e := range events {
		if e.Kind == sim.EventDeliver {
			deliveries++
		}
	}
	drawDeliveries := deliveries <= maxDeliveries

	crosses := 0
	for _, e := range events {
		switch e.Kind {
		case sim.EventDeliver:
			if drawDeliveries && e.From >= 0 && e.To >= 0 {
				doc.line(px(e.Time-1), py(e.From), px(e.Time), py(e.To), "#3b6ea5", 0.6)
			}
		case sim.EventDropFault, sim.EventDropDead:
			x, y := px(e.Time), py(e.To)
			stroke := "#c0392b"
			if e.Kind == sim.EventDropDead {
				stroke = "#7f8c8d"
			}
			doc.line(x-3, y-3, x+3, y+3, stroke, 1.2)
			doc.line(x-3, y+3, x+3, y-3, stroke, 1.2)
			crosses++
		case sim.EventDup:
			doc.line(px(e.Time), py(e.To)-4, px(e.Time), py(e.To)+4, "#e67e22", 1.5)
		case sim.EventNodeCrash:
			doc.circle(px(e.Time), py(e.From), 4, "#c0392b")
		case sim.EventNodeRestart:
			doc.circle(px(e.Time), py(e.From), 4, "#27ae60")
		case sim.EventPeerDown:
			x, y := px(e.Time), py(e.From)
			fmt.Fprintf(&doc.b, `<path d="M %.1f %.1f L %.1f %.1f L %.1f %.1f Z" fill="#c0392b"/>`+"\n",
				x-4, y-4, x+4, y-4, x, y+4)
		case sim.EventPeerUp:
			x, y := px(e.Time), py(e.From)
			fmt.Fprintf(&doc.b, `<path d="M %.1f %.1f L %.1f %.1f L %.1f %.1f Z" fill="#27ae60"/>`+"\n",
				x-4, y+4, x+4, y+4, x, y-4)
		}
	}

	legend := fmt.Sprintf("trace: %d events over %d time units", len(events), maxT)
	if !drawDeliveries {
		legend += fmt.Sprintf(" (deliveries hidden: %d > %d)", deliveries, maxDeliveries)
	}
	doc.text(leftPad, h-4, 11, legend)
	return doc.String()
}
