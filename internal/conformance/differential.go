package conformance

import (
	"fmt"
	"math/rand"
	"runtime"

	"fdlsp/internal/bounds"
	"fdlsp/internal/coloring"
	"fdlsp/internal/core"
	"fdlsp/internal/geom"
	"fdlsp/internal/graph"
	"fdlsp/internal/obs"
)

// This file is the differential conformance suite: it cross-checks the
// paper's two algorithms — DistMIS on the synchronous lock-step engine and
// DFS on the asynchronous discrete-event engine — over one seeded corpus,
// and asserts that results and metrics snapshots are independent of the
// runtime's parallelism. The engines stripe node work across
// GOMAXPROCS-many workers, so any ordering leak shows up here as a
// differing assignment or a differing registry rendering.

// DifferentialGraphs returns the seeded corpus of instance families the
// differential suite runs on: unit disk fields, random trees, grids and
// connected random general graphs. The generator seed is fixed so every
// caller sees the same instances.
func DifferentialGraphs() map[string]*graph.Graph {
	rng := rand.New(rand.NewSource(99))
	udgSmall, _ := geom.RandomUDG(36, 6, 1.4, rng)
	udgDense, _ := geom.RandomUDG(48, 8, 1.6, rng)
	return map[string]*graph.Graph{
		"udg-36":     udgSmall,
		"udg-48":     udgDense,
		"tree-40":    graph.RandomTree(40, rng),
		"grid-5x6":   graph.Grid(5, 6),
		"gnm-40-100": graph.ConnectedGNM(40, 100, rng),
	}
}

// outcome reduces one algorithm run to its comparable artifacts: the
// assignment, the frame length, and the byte-exact metrics rendering.
type outcome struct {
	as       coloring.Assignment
	slots    int
	snapshot string
}

// runAlgo executes algo ("distmis" or "dfs") on g with a fresh registry and
// returns the comparable outcome.
func runAlgo(algo string, g *graph.Graph, seed int64) (outcome, error) {
	reg := obs.NewRegistry()
	var as coloring.Assignment
	var slots int
	switch algo {
	case "distmis":
		res, err := core.DistMIS(g, core.Options{Seed: seed, Metrics: reg})
		if err != nil {
			return outcome{}, err
		}
		as, slots = res.Assignment, res.Slots
	case "dfs":
		res, err := core.DFS(g, core.DFSOptions{Seed: seed, Metrics: reg})
		if err != nil {
			return outcome{}, err
		}
		as, slots = res.Assignment, res.Slots
	default:
		return outcome{}, fmt.Errorf("unknown algorithm %q", algo)
	}
	return outcome{as: as, slots: slots, snapshot: reg.Text()}, nil
}

// Differential runs both algorithms over the corpus for every seed and
// returns all invariant violations. For each (instance, seed, algorithm)
// it checks the schedule verifies, the frame length sits in the
// [LowerBound, 2Δ²] sandwich, and — the differential part — that repeating
// the run under each GOMAXPROCS value in procs reproduces the identical
// assignment and a byte-identical metrics snapshot. procs defaults to
// {1, NumCPU} when empty; seeds defaults to {1, 2}.
func Differential(seeds []int64, procs []int) []Failure {
	if len(seeds) == 0 {
		seeds = []int64{1, 2}
	}
	if len(procs) == 0 {
		procs = []int{1, runtime.NumCPU()}
	}
	var fails []Failure
	add := func(gname string, seed int64, inv, detail string) {
		fails = append(fails, Failure{Graph: gname, Seed: seed, Invariant: inv, Detail: detail})
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))

	for name, g := range DifferentialGraphs() {
		for _, seed := range seeds {
			for _, algo := range []string{"distmis", "dfs"} {
				label := name + "/" + algo
				runtime.GOMAXPROCS(procs[0])
				base, err := runAlgo(algo, g, seed)
				if err != nil {
					add(label, seed, "runs", err.Error())
					continue
				}
				if viols := coloring.Verify(g, base.as); len(viols) != 0 {
					add(label, seed, "verifier", viols[0].String())
					continue
				}
				if lb := bounds.LowerBound(g); base.slots < lb {
					add(label, seed, "lower-bound", fmt.Sprintf("%d slots < %d", base.slots, lb))
				}
				if ub := bounds.UpperBound(g); base.slots > ub {
					add(label, seed, "upper-bound", fmt.Sprintf("%d slots > 2Δ² = %d", base.slots, ub))
				}
				for _, p := range procs[1:] {
					runtime.GOMAXPROCS(p)
					again, err := runAlgo(algo, g, seed)
					if err != nil {
						add(label, seed, "gomaxprocs", fmt.Sprintf("run failed at GOMAXPROCS=%d: %v", p, err))
						continue
					}
					if !equalAssignments(base.as, again.as) {
						add(label, seed, "gomaxprocs",
							fmt.Sprintf("assignment differs between GOMAXPROCS=%d and %d", procs[0], p))
					}
					if base.snapshot != again.snapshot {
						add(label, seed, "gomaxprocs",
							fmt.Sprintf("metrics snapshot differs between GOMAXPROCS=%d and %d", procs[0], p))
					}
				}
			}
		}
	}
	return fails
}
