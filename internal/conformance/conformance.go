// Package conformance is a reusable validation battery for FDLSP
// schedulers: given any function that produces a schedule for a graph, it
// checks the full set of invariants this repository relies on — verifier
// cleanliness, the theoretical bounds sandwich, radio-level feasibility,
// per-seed determinism, and robustness across graph families. The
// repository's own algorithms pass it (see the tests), and downstream users
// implementing new schedulers against the library can run the same battery.
package conformance

import (
	"fmt"
	"math/rand"

	"fdlsp/internal/bounds"
	"fdlsp/internal/coloring"
	"fdlsp/internal/geom"
	"fdlsp/internal/graph"
	"fdlsp/internal/sched"
)

// Scheduler produces a complete FDLSP assignment for a graph. seed governs
// any internal randomness; equal seeds must give equal schedules.
type Scheduler func(g *graph.Graph, seed int64) (coloring.Assignment, error)

// Options tunes the battery.
type Options struct {
	// Seeds to exercise (default {1, 2}).
	Seeds []int64
	// SkipDeterminism disables the equal-seed reproducibility check (for
	// schedulers that are intentionally time-dependent).
	SkipDeterminism bool
	// Graphs overrides the default instance families.
	Graphs map[string]*graph.Graph
}

// Failure describes one violated invariant.
type Failure struct {
	Graph     string
	Seed      int64
	Invariant string
	Detail    string
}

func (f Failure) String() string {
	return fmt.Sprintf("%s (seed %d): %s: %s", f.Graph, f.Seed, f.Invariant, f.Detail)
}

// DefaultGraphs returns the instance families the battery uses when none
// are supplied: fixed structures plus random trees, general graphs and a
// unit disk field.
func DefaultGraphs() map[string]*graph.Graph {
	rng := rand.New(rand.NewSource(1234))
	udg, _ := geom.RandomUDG(50, 7, 1.3, rng)
	return map[string]*graph.Graph{
		"empty":     graph.New(0),
		"singleton": graph.New(1),
		"edge":      graph.Path(2),
		"path":      graph.Path(12),
		"cycle-odd": graph.Cycle(7),
		"star":      graph.Star(10),
		"k5":        graph.Complete(5),
		"k33":       graph.CompleteBipartite(3, 3),
		"grid":      graph.Grid(4, 5),
		"tree":      graph.RandomTree(30, rng),
		"gnm":       graph.GNM(30, 90, rng),
		"udg":       udg,
	}
}

// Check runs the battery and returns every failure (empty means fully
// conformant).
func Check(s Scheduler, opts Options) []Failure {
	seeds := opts.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1, 2}
	}
	graphs := opts.Graphs
	if graphs == nil {
		graphs = DefaultGraphs()
	}
	var fails []Failure
	add := func(gname string, seed int64, inv, detail string) {
		fails = append(fails, Failure{Graph: gname, Seed: seed, Invariant: inv, Detail: detail})
	}

	for name, g := range graphs {
		for _, seed := range seeds {
			as, err := s(g, seed)
			if err != nil {
				add(name, seed, "runs", err.Error())
				continue
			}
			// 1. Complete, conflict-free assignment.
			if viols := coloring.Verify(g, as); len(viols) != 0 {
				add(name, seed, "verifier", viols[0].String())
				continue
			}
			slots := as.NumColors()
			// 2. Bounds sandwich.
			if g.M() > 0 {
				if lb := bounds.LowerBound(g); slots < lb {
					add(name, seed, "lower-bound", fmt.Sprintf("%d slots < %d", slots, lb))
				}
				if ub := bounds.UpperBound(g); slots > ub {
					add(name, seed, "upper-bound", fmt.Sprintf("%d slots > %d", slots, ub))
				}
			}
			// 3. Operational frame + radio feasibility.
			frame, err := sched.Build(g, as)
			if err != nil {
				add(name, seed, "frame", err.Error())
				continue
			}
			if col := frame.RadioCheck(g); len(col) != 0 {
				add(name, seed, "radio", col[0].String())
			}
			// 4. Determinism per seed.
			if !opts.SkipDeterminism {
				again, err := s(g, seed)
				if err != nil {
					add(name, seed, "determinism", "second run failed: "+err.Error())
				} else if !equalAssignments(as, again) {
					add(name, seed, "determinism", "same seed produced a different schedule")
				}
			}
		}
	}
	return fails
}

func equalAssignments(a, b coloring.Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for arc, c := range a {
		if b[arc] != c {
			return false
		}
	}
	return true
}
