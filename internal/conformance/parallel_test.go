package conformance

import (
	"runtime"
	"testing"
)

// TestParallelSerialOracle is the parallel-vs-serial conformance gate: every
// (algorithm, topology, seed) cell must produce a byte-identical Result,
// trace, and metrics snapshot whether the sync engine runs forced-serial or
// sharded at GOMAXPROCS ∈ {1, 2, 8} (and at an oversubscribed Workers=8).
// CI runs it under -race at GOMAXPROCS=8. In -short mode it narrows to one
// seed.
func TestParallelSerialOracle(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	if fails := ParallelSerial(seeds, []int{1, 2, 8}); len(fails) != 0 {
		for _, f := range fails {
			t.Errorf("%s", f)
		}
	}
}

// TestParallelSerialRestoresGOMAXPROCS guards the oracle's own hygiene.
func TestParallelSerialRestoresGOMAXPROCS(t *testing.T) {
	before := runtime.GOMAXPROCS(0)
	_ = ParallelSerial([]int64{1}, []int{2})
	if after := runtime.GOMAXPROCS(0); after != before {
		t.Fatalf("GOMAXPROCS changed from %d to %d", before, after)
	}
}

// TestRunTracedRejectsUnknown covers the error path.
func TestRunTracedRejectsUnknown(t *testing.T) {
	g := DifferentialGraphs()["grid-5x6"]
	if _, err := runTraced("nope", g, 1, 0); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
