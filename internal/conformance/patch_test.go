package conformance

import (
	"testing"

	"fdlsp/internal/dynamic"
	"fdlsp/internal/graph"
)

// TestPatchRebuildOracle is the cache-patch conformance gate: over every
// differential topology and seeded event stream, a session maintained by
// incremental conflict-cache patches must be indistinguishable — reports,
// schedules, frames, and byte-identical conflict rows — from one that
// rebuilds the cache wholesale on every mutation. CI runs it under -race.
// In -short mode it narrows to one seed.
func TestPatchRebuildOracle(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	if fails := PatchRebuild(seeds); len(fails) != 0 {
		for _, f := range fails {
			t.Errorf("%s", f)
		}
	}
}

// TestPatchRebuildStreamRejectsInvalidEqually: a stream of only invalid
// batches leaves both sessions at their initial state, still equal.
func TestPatchRebuildStreamRejectsInvalidEqually(t *testing.T) {
	g := graph.Path(6)
	batches := [][]dynamic.Event{
		{{Kind: dynamic.LinkUp, U: 0, V: 1}},   // exists
		{{Kind: dynamic.LinkDown, U: 0, V: 5}}, // missing
		{{Kind: dynamic.LinkUp, U: 3, V: 3}},   // self loop
		{{Kind: dynamic.EventKind(99), U: 0}},  // unknown kind
	}
	if err := PatchRebuildStream(g, batches); err != nil {
		t.Fatal(err)
	}
}

// TestRandomEventBatchesDeterministic: the generator is a pure function of
// (graph, count, seed) — the oracle and the fuzz corpus depend on that.
func TestRandomEventBatchesDeterministic(t *testing.T) {
	g := DifferentialGraphs()["grid-5x6"]
	a := RandomEventBatches(g, 30, 7)
	b := RandomEventBatches(g, 30, 7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("batch %d lengths differ", i)
		}
		for j := range a[i] {
			av, bv := a[i][j], b[i][j]
			if av.Kind != bv.Kind || av.U != bv.U || av.V != bv.V || len(av.Peers) != len(bv.Peers) {
				t.Fatalf("batch %d event %d differs: %+v vs %+v", i, j, av, bv)
			}
		}
	}
}
