package conformance

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"

	"fdlsp/internal/core"
	"fdlsp/internal/graph"
	"fdlsp/internal/obs"
	"fdlsp/internal/sim"
)

// This file is the parallel-vs-serial conformance oracle: for every
// (algorithm, topology, seed) cell of the differential corpus it runs the
// forced-serial engine (Workers=1 at GOMAXPROCS=1) and compares it against
// the sharded engine at each requested GOMAXPROCS and at an explicit
// oversubscribed worker count. Byte-identical Result, trace, and metrics
// snapshot is the contract (DESIGN.md §13); any scheduling leak in the
// worker pool shows up here as a differing artifact.

// traceRecorder captures the full event stream, unbounded, for byte-level
// comparison. The engines emit from their sequential sections only; the
// mutex makes the recorder safe regardless.
type traceRecorder struct {
	mu     sync.Mutex
	events []sim.Event
}

func (t *traceRecorder) Emit(ev sim.Event) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// parallelOutcome reduces one traced run to its comparable artifacts.
type parallelOutcome struct {
	result   *core.Result
	events   []sim.Event
	snapshot string
}

// runTraced executes algo with a full trace and fresh registry. workers
// configures the sync engine's pool for the DistMIS path; the DFS path runs
// the async engine, which has no worker knob, but stays in the matrix so its
// GOMAXPROCS invariance is pinned by the same oracle.
func runTraced(algo string, g *graph.Graph, seed int64, workers int) (parallelOutcome, error) {
	reg := obs.NewRegistry()
	tr := &traceRecorder{}
	var res *core.Result
	var err error
	switch algo {
	case "distmis":
		res, err = core.DistMIS(g, core.Options{Seed: seed, Metrics: reg, Trace: tr, Workers: workers})
	case "dfs":
		res, err = core.DFS(g, core.DFSOptions{Seed: seed, Metrics: reg, Trace: tr})
	default:
		return parallelOutcome{}, fmt.Errorf("unknown algorithm %q", algo)
	}
	if err != nil {
		return parallelOutcome{}, err
	}
	return parallelOutcome{result: res, events: tr.events, snapshot: reg.Text()}, nil
}

// diffOutcome names the first artifact in which two outcomes differ, or ""
// when they are identical.
func diffOutcome(base, got parallelOutcome) string {
	if !reflect.DeepEqual(base.result, got.result) {
		return "result"
	}
	if len(base.events) != len(got.events) {
		return fmt.Sprintf("trace length (%d vs %d events)", len(base.events), len(got.events))
	}
	for i := range base.events {
		if base.events[i] != got.events[i] {
			return fmt.Sprintf("trace event %d (%+v vs %+v)", i, base.events[i], got.events[i])
		}
	}
	if base.snapshot != got.snapshot {
		return "metrics snapshot"
	}
	return ""
}

// ParallelSerial runs every (algorithm, topology, seed) cell serial vs
// parallel and returns all determinism violations. The baseline is the
// forced-serial engine (Workers=1, GOMAXPROCS=1); each p in procs re-runs
// the cell at GOMAXPROCS=p with the default worker pool (Workers=0), and one
// extra run oversubscribes the pool (Workers=8) without touching GOMAXPROCS.
// procs defaults to {1, 2, 8}; seeds defaults to {1, 2}. GOMAXPROCS is
// restored before returning.
func ParallelSerial(seeds []int64, procs []int) []Failure {
	if len(seeds) == 0 {
		seeds = []int64{1, 2}
	}
	if len(procs) == 0 {
		procs = []int{1, 2, 8}
	}
	var fails []Failure
	add := func(gname string, seed int64, inv, detail string) {
		fails = append(fails, Failure{Graph: gname, Seed: seed, Invariant: inv, Detail: detail})
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))

	for name, g := range DifferentialGraphs() {
		for _, seed := range seeds {
			for _, algo := range []string{"distmis", "dfs"} {
				label := name + "/" + algo
				runtime.GOMAXPROCS(1)
				base, err := runTraced(algo, g, seed, 1)
				if err != nil {
					add(label, seed, "runs", err.Error())
					continue
				}
				for _, p := range procs {
					runtime.GOMAXPROCS(p)
					got, err := runTraced(algo, g, seed, 0)
					if err != nil {
						add(label, seed, "parallel-serial", fmt.Sprintf("run failed at GOMAXPROCS=%d: %v", p, err))
						continue
					}
					if d := diffOutcome(base, got); d != "" {
						add(label, seed, "parallel-serial",
							fmt.Sprintf("%s differs between serial and GOMAXPROCS=%d", d, p))
					}
				}
				runtime.GOMAXPROCS(1)
				got, err := runTraced(algo, g, seed, 8)
				if err != nil {
					add(label, seed, "parallel-serial", fmt.Sprintf("run failed at Workers=8: %v", err))
					continue
				}
				if d := diffOutcome(base, got); d != "" {
					add(label, seed, "parallel-serial",
						fmt.Sprintf("%s differs between serial and Workers=8", d))
				}
			}
		}
	}
	return fails
}
