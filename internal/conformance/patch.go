package conformance

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"

	"fdlsp/internal/coloring"
	"fdlsp/internal/dynamic"
	"fdlsp/internal/graph"
	"fdlsp/internal/incr"
)

// This file is the patch-vs-rebuild conformance oracle for the incremental
// distance-2 conflict cache: the same rescheduling session is driven twice
// over an arbitrary event stream — once with topology-cache patching on (the
// default: mutations rewrite only the 2-hop neighborhood of the flipped
// edges) and once with patching disabled (every mutation discards the cache
// and the next read rebuilds every conflict row from scratch). The two
// sessions must be indistinguishable after every batch: identical reports,
// identical schedules and frame lengths, identical topologies, and
// byte-identical conflict rows for every live arc. Any divergence is a bug
// in the patch path, never the rebuild path — the rebuild is definitionally
// correct.

// PatchRebuildStream drives both sessions through the given batches and
// returns the first divergence (nil means conformant). Batches may contain
// invalid events: both sessions must then reject with the same error and
// roll back to the same state, which pins the repair/validation rollback
// path to the same oracle.
func PatchRebuildStream(g *graph.Graph, batches [][]dynamic.Event) error {
	as := coloring.Greedy(g, nil)
	patched, err := incr.New(g, as)
	if err != nil {
		return err
	}
	rebuild, err := incr.New(g, as)
	if err != nil {
		return err
	}
	rebuild.Graph().SetTopoPatching(false)

	for i, batch := range batches {
		repP, errP := patched.Apply(batch)
		repR, errR := rebuild.Apply(batch)
		if (errP == nil) != (errR == nil) {
			return fmt.Errorf("batch %d: patched err = %v, rebuild err = %v", i, errP, errR)
		}
		if errP != nil {
			if errP.Error() != errR.Error() {
				return fmt.Errorf("batch %d: error text diverges: %q vs %q", i, errP, errR)
			}
		} else if d := diffReports(repP, repR); d != "" {
			return fmt.Errorf("batch %d: report field %s diverges (%+v vs %+v)", i, d, repP, repR)
		}
		if d := diffSessions(patched, rebuild); d != "" {
			return fmt.Errorf("batch %d: %s", i, d)
		}
	}
	return nil
}

// diffReports compares two batch reports, ignoring the cache-maintenance
// counters — those measure how each mode paid for its rows (patches vs
// rebuilds) and differ by construction.
func diffReports(a, b *incr.Report) string {
	x, y := *a, *b
	x.CachePatches, x.CachePatchedArcs, x.CacheRebuilds = 0, 0, 0
	y.CachePatches, y.CachePatchedArcs, y.CacheRebuilds = 0, 0, 0
	if !reflect.DeepEqual(x, y) {
		switch {
		case !reflect.DeepEqual(x.Recolored, y.Recolored):
			return "Recolored"
		case !reflect.DeepEqual(x.Dropped, y.Dropped):
			return "Dropped"
		case x.FrameLength != y.FrameLength:
			return "FrameLength"
		case x.Rounds != y.Rounds:
			return "Rounds"
		case x.MinUsable != y.MinUsable:
			return "MinUsable"
		case x.DirtyArcs != y.DirtyArcs:
			return "DirtyArcs"
		default:
			return "(other)"
		}
	}
	return ""
}

// diffSessions compares the full observable state of the two sessions,
// including a byte-level sweep of every conflict row.
func diffSessions(p, r *incr.Updater) string {
	if !p.Graph().Equal(r.Graph()) {
		return "topologies diverge"
	}
	if !reflect.DeepEqual(p.Assignment(), r.Assignment()) {
		return "schedules diverge"
	}
	if p.Slots() != r.Slots() {
		return fmt.Sprintf("frame lengths diverge (%d vs %d)", p.Slots(), r.Slots())
	}
	if p.Updates() != r.Updates() {
		return fmt.Sprintf("update counters diverge (%d vs %d)", p.Updates(), r.Updates())
	}
	arcsP, arcsR := p.Graph().ArcsView(), r.Graph().ArcsView()
	if !reflect.DeepEqual(arcsP, arcsR) {
		return "arc lists diverge"
	}
	for _, a := range arcsP {
		cp := coloring.ConflictingArcs(p.Graph(), a)
		cr := coloring.ConflictingArcs(r.Graph(), a)
		if !reflect.DeepEqual(cp, cr) {
			return fmt.Sprintf("conflict row of %v diverges\n patched: %v\n rebuilt: %v", a, cp, cr)
		}
	}
	return ""
}

// RandomEventBatches generates a deterministic stream of event batches for
// g: link flips, node failures, joins and moves, mostly valid against a
// shadow topology, with a fraction of deliberately invalid batches (a
// link-up on an existing edge appended at the end) so both sessions'
// reject-and-rollback paths are exercised too.
func RandomEventBatches(g *graph.Graph, batches int, seed int64) [][]dynamic.Event {
	rng := rand.New(rand.NewSource(seed))
	shadow := g.Clone()
	out := make([][]dynamic.Event, 0, batches)
	for len(out) < batches {
		k := 1 + rng.Intn(3)
		staged := shadow.Clone()
		batch := make([]dynamic.Event, 0, k+1)
		for len(batch) < k {
			ev, ok := randomValidEvent(staged, rng)
			if !ok {
				break
			}
			applyToShadow(staged, ev)
			batch = append(batch, ev)
		}
		if len(batch) == 0 {
			continue
		}
		if rng.Intn(100) < 15 {
			// Corrupt: duplicate an existing edge as a link-up. The whole
			// batch must be rejected, so the shadow keeps its old state.
			if es := staged.Edges(); len(es) > 0 {
				e := es[rng.Intn(len(es))]
				batch = append(batch, dynamic.Event{Kind: dynamic.LinkUp, U: e.U, V: e.V})
				out = append(out, batch)
				continue
			}
		}
		shadow = staged
		out = append(out, batch)
	}
	return out
}

// randomValidEvent draws one event valid against the shadow topology.
func randomValidEvent(g *graph.Graph, rng *rand.Rand) (dynamic.Event, bool) {
	n := g.N()
	if n < 2 {
		return dynamic.Event{}, false
	}
	for try := 0; try < 64; try++ {
		switch rng.Intn(6) {
		case 0, 1: // link up
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				return dynamic.Event{Kind: dynamic.LinkUp, U: u, V: v}, true
			}
		case 2, 3: // link down
			if g.M() > 0 {
				es := g.Edges()
				e := es[rng.Intn(len(es))]
				return dynamic.Event{Kind: dynamic.LinkDown, U: e.U, V: e.V}, true
			}
		case 4: // node fail (valid even when isolated)
			return dynamic.Event{Kind: dynamic.NodeFail, U: rng.Intn(n)}, true
		default: // node join or move with a small random peer set
			u := rng.Intn(n)
			peers := make([]int, 0, 3)
			for len(peers) < 1+rng.Intn(3) {
				w := rng.Intn(n)
				if w == u {
					continue
				}
				dup := false
				for _, p := range peers {
					if p == w {
						dup = true
					}
				}
				if !dup {
					peers = append(peers, w)
				}
			}
			if g.Degree(u) == 0 {
				// A join must not re-add existing edges; with degree 0 any
				// peer set is fresh.
				return dynamic.Event{Kind: dynamic.NodeJoin, U: u, Peers: peers}, true
			}
			return dynamic.Event{Kind: dynamic.NodeMove, U: u, Peers: peers}, true
		}
	}
	return dynamic.Event{}, false
}

// applyToShadow mirrors incr's event semantics on the generator's shadow
// topology.
func applyToShadow(g *graph.Graph, ev dynamic.Event) {
	switch ev.Kind {
	case dynamic.LinkUp:
		g.AddEdge(ev.U, ev.V)
	case dynamic.LinkDown:
		g.RemoveEdge(ev.U, ev.V)
	case dynamic.NodeFail:
		for _, w := range g.Neighbors(ev.U) {
			g.RemoveEdge(ev.U, w)
		}
	case dynamic.NodeJoin:
		for _, w := range ev.Peers {
			g.AddEdge(ev.U, w)
		}
	case dynamic.NodeMove:
		want := make(map[int]bool, len(ev.Peers))
		for _, w := range ev.Peers {
			want[w] = true
		}
		for _, w := range g.Neighbors(ev.U) {
			if !want[w] {
				g.RemoveEdge(ev.U, w)
			}
		}
		for _, w := range ev.Peers {
			if !g.HasEdge(ev.U, w) {
				g.AddEdge(ev.U, w)
			}
		}
	}
}

// PatchRebuild runs the oracle over the differential graph families and
// seeded random event streams, returning every divergence found.
func PatchRebuild(seeds []int64) []Failure {
	if len(seeds) == 0 {
		seeds = []int64{1, 2}
	}
	graphs := DifferentialGraphs()
	names := make([]string, 0, len(graphs))
	for name := range graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	var fails []Failure
	for _, name := range names {
		g := graphs[name]
		if g.N() < 2 {
			continue
		}
		for _, seed := range seeds {
			batches := RandomEventBatches(g, 40, seed)
			if err := PatchRebuildStream(g, batches); err != nil {
				fails = append(fails, Failure{
					Graph: name, Seed: seed, Invariant: "patch-rebuild", Detail: err.Error(),
				})
			}
		}
	}
	return fails
}
