package conformance

import (
	"testing"

	"fdlsp/internal/coloring"
	"fdlsp/internal/core"
	"fdlsp/internal/dmgc"
	"fdlsp/internal/graph"
)

func TestDistMISConforms(t *testing.T) {
	s := func(g *graph.Graph, seed int64) (coloring.Assignment, error) {
		res, err := core.DistMIS(g, core.Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		return res.Assignment, nil
	}
	if fails := Check(s, Options{}); len(fails) != 0 {
		t.Fatalf("distMIS fails conformance: %v", fails[0])
	}
}

func TestDistMISGeneralConforms(t *testing.T) {
	s := func(g *graph.Graph, seed int64) (coloring.Assignment, error) {
		res, err := core.DistMIS(g, core.Options{Seed: seed, Variant: core.General})
		if err != nil {
			return nil, err
		}
		return res.Assignment, nil
	}
	if fails := Check(s, Options{}); len(fails) != 0 {
		t.Fatalf("distMIS-general fails conformance: %v", fails[0])
	}
}

func TestDFSConforms(t *testing.T) {
	s := func(g *graph.Graph, seed int64) (coloring.Assignment, error) {
		res, err := core.DFS(g, core.DFSOptions{Seed: seed})
		if err != nil {
			return nil, err
		}
		return res.Assignment, nil
	}
	if fails := Check(s, Options{}); len(fails) != 0 {
		t.Fatalf("DFS fails conformance: %v", fails[0])
	}
}

func TestRandomizedConforms(t *testing.T) {
	s := func(g *graph.Graph, seed int64) (coloring.Assignment, error) {
		res, err := core.Randomized(g, seed)
		if err != nil {
			return nil, err
		}
		return res.Assignment, nil
	}
	if fails := Check(s, Options{}); len(fails) != 0 {
		t.Fatalf("randomized fails conformance: %v", fails[0])
	}
}

func TestDMGCConforms(t *testing.T) {
	s := func(g *graph.Graph, seed int64) (coloring.Assignment, error) {
		res, err := dmgc.Schedule(g)
		if err != nil {
			return nil, err
		}
		return res.Assignment, nil
	}
	if fails := Check(s, Options{}); len(fails) != 0 {
		t.Fatalf("D-MGC fails conformance: %v", fails[0])
	}
}

func TestGreedyConforms(t *testing.T) {
	s := func(g *graph.Graph, seed int64) (coloring.Assignment, error) {
		return coloring.Greedy(g, nil), nil
	}
	if fails := Check(s, Options{}); len(fails) != 0 {
		t.Fatalf("greedy fails conformance: %v", fails[0])
	}
}

// TestBatteryCatchesBrokenSchedulers proves the battery has teeth: a
// scheduler that colors everything with slot 1 must fail the verifier, and
// a nondeterministic one must fail the determinism check.
func TestBatteryCatchesBrokenSchedulers(t *testing.T) {
	allOnes := func(g *graph.Graph, seed int64) (coloring.Assignment, error) {
		as := coloring.NewAssignment(g)
		for _, a := range g.Arcs() {
			as.Set(a, 1)
		}
		return as, nil
	}
	fails := Check(allOnes, Options{})
	if len(fails) == 0 {
		t.Fatal("all-ones scheduler passed?!")
	}
	found := false
	for _, f := range fails {
		if f.Invariant == "verifier" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected verifier failures, got %v", fails[:1])
	}

	flip := 0
	nondet := func(g *graph.Graph, seed int64) (coloring.Assignment, error) {
		flip++
		order := g.Arcs()
		if flip%2 == 0 && len(order) > 1 {
			order[0], order[1] = order[1], order[0]
		}
		return coloring.Greedy(g, order), nil
	}
	fails = Check(nondet, Options{})
	foundDet := false
	for _, f := range fails {
		if f.Invariant == "determinism" {
			foundDet = true
		}
	}
	if !foundDet {
		t.Error("nondeterministic scheduler not caught")
	}
	// And SkipDeterminism silences exactly that.
	flip = 0
	for _, f := range Check(nondet, Options{SkipDeterminism: true}) {
		if f.Invariant == "determinism" {
			t.Error("determinism checked despite SkipDeterminism")
		}
	}
}

func TestFailureString(t *testing.T) {
	f := Failure{Graph: "g", Seed: 3, Invariant: "verifier", Detail: "boom"}
	if f.String() != "g (seed 3): verifier: boom" {
		t.Errorf("got %q", f.String())
	}
}
