package conformance

import (
	"runtime"
	"testing"
)

// TestDifferentialSuite is the full cross-engine/parallelism check; CI runs
// it under -race as well. In -short mode it narrows to one seed.
func TestDifferentialSuite(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	if fails := Differential(seeds, nil); len(fails) != 0 {
		for _, f := range fails {
			t.Errorf("%s", f)
		}
	}
}

// TestDifferentialRestoresGOMAXPROCS guards the suite's own hygiene: it
// must leave the runtime's parallelism as it found it.
func TestDifferentialRestoresGOMAXPROCS(t *testing.T) {
	before := runtime.GOMAXPROCS(0)
	_ = Differential([]int64{1}, []int{1})
	if after := runtime.GOMAXPROCS(0); after != before {
		t.Fatalf("GOMAXPROCS changed from %d to %d", before, after)
	}
}

// TestDifferentialGraphsStable pins the corpus: the generator seed is fixed,
// so instance shapes must not drift (a drift would silently re-baseline the
// whole suite).
func TestDifferentialGraphsStable(t *testing.T) {
	a, b := DifferentialGraphs(), DifferentialGraphs()
	if len(a) != len(b) {
		t.Fatal("corpus size unstable")
	}
	want := map[string][2]int{
		"udg-36":     {36, 93},
		"udg-48":     {48, 90},
		"tree-40":    {40, 39},
		"grid-5x6":   {30, 49},
		"gnm-40-100": {40, 100},
	}
	for name, g := range a {
		other, ok := b[name]
		if !ok || other.N() != g.N() || other.M() != g.M() {
			t.Errorf("%s not reproducible across calls", name)
		}
		w, ok := want[name]
		if !ok {
			t.Errorf("unexpected corpus instance %s (update the pinned table)", name)
			continue
		}
		if g.N() != w[0] || g.M() != w[1] {
			t.Errorf("%s drifted: n=%d m=%d, pinned n=%d m=%d", name, g.N(), g.M(), w[0], w[1])
		}
	}
}

// TestRunAlgoRejectsUnknown covers the error path.
func TestRunAlgoRejectsUnknown(t *testing.T) {
	g := DifferentialGraphs()["grid-5x6"]
	if _, err := runAlgo("nope", g, 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
