package cv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fdlsp/internal/graph"
	"fdlsp/internal/mis"
)

func TestLogStar(t *testing.T) {
	cases := map[float64]int{1: 0, 2: 1, 4: 2, 16: 3, 65536: 4}
	for n, want := range cases {
		if got := LogStar(n); got != want {
			t.Errorf("log*(%v) = %d, want %d", n, got, want)
		}
	}
}

func TestReductionRounds(t *testing.T) {
	if ReductionRounds(6) != 0 {
		t.Error("palette 6 needs no reduction")
	}
	if r := ReductionRounds(1_000_000); r < 2 || r > 8 {
		t.Errorf("reduction rounds for 1e6 = %d, expected a small log*-like count", r)
	}
	// Monotone-ish sanity: more colors never need fewer rounds.
	if ReductionRounds(100) > ReductionRounds(1_000_000) {
		t.Error("rounds not monotone")
	}
}

func TestRootForestRejectsCycles(t *testing.T) {
	if _, err := RootForest(graph.Cycle(5)); err == nil {
		t.Fatal("cycle accepted as forest")
	}
}

func TestRootForestOrientsTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomTree(40, rng)
	r, err := RootForest(g)
	if err != nil {
		t.Fatal(err)
	}
	roots := 0
	for v, p := range r.Parent {
		if p < 0 {
			roots++
		} else if !g.HasEdge(v, p) {
			t.Fatalf("parent edge %d-%d missing", v, p)
		}
	}
	if roots != 1 {
		t.Fatalf("tree has %d roots", roots)
	}
}

func properForest(g *graph.Graph, colors []int) bool {
	for _, e := range g.Edges() {
		if colors[e.U] == colors[e.V] {
			return false
		}
	}
	return true
}

func TestColorForestPathsAndTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []*graph.Graph{
		graph.Path(1),
		graph.Path(2),
		graph.Path(100),
		graph.Star(30),
		graph.RandomTree(200, rng),
		graph.RandomTree(500, rng),
	}
	for _, g := range cases {
		r, err := RootForest(g)
		if err != nil {
			t.Fatal(err)
		}
		colors, stats, err := ColorForest(g, r)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if !properForest(g, colors) {
			t.Fatalf("%v: improper coloring", g)
		}
		for _, c := range colors {
			if c < 0 || c > 2 {
				t.Fatalf("%v: color %d outside palette", g, c)
			}
		}
		// Rounds are log*-ish plus the constant tail, nowhere near n.
		if g.N() > 50 && stats.Rounds > 40 {
			t.Errorf("%v: %d rounds is not O(log* n)", g, stats.Rounds)
		}
	}
}

func TestColorForestDisconnectedForest(t *testing.T) {
	g := graph.New(9)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5) // node 3 isolated; two small trees + isolated nodes
	g.AddEdge(7, 8)
	r, err := RootForest(g)
	if err != nil {
		t.Fatal(err)
	}
	colors, _, err := ColorForest(g, r)
	if err != nil {
		t.Fatal(err)
	}
	if !properForest(g, colors) {
		t.Fatal("improper")
	}
}

func TestColorForestRoundsScaleAsLogStar(t *testing.T) {
	// Growing the path 100x should add only O(1) rounds (log* growth).
	rng := rand.New(rand.NewSource(3))
	_ = rng
	smallR := measureRounds(t, graph.Path(50))
	bigR := measureRounds(t, graph.Path(5000))
	if bigR > smallR+6 {
		t.Errorf("rounds grew from %d to %d for 100x nodes — not log*", smallR, bigR)
	}
}

func measureRounds(t *testing.T, g *graph.Graph) int64 {
	t.Helper()
	r, err := RootForest(g)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := ColorForest(g, r)
	if err != nil {
		t.Fatal(err)
	}
	return stats.Rounds
}

func TestForestMIS(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomTree(1+rng.Intn(150), rng)
		inMIS, _, err := ForestMIS(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if ok, bad := mis.Verify(g, inMIS, nil); !ok {
			t.Fatalf("trial %d: invalid MIS %v", trial, bad)
		}
	}
}

func TestForestMISDeterministic(t *testing.T) {
	g := graph.RandomTree(60, rand.New(rand.NewSource(5)))
	a, _, err := ForestMIS(g)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ForestMIS(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("nondeterministic at node %d", v)
		}
	}
}

// Property: CV coloring is proper on random forests of any size.
func TestColorForestPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomTree(1+rng.Intn(300), rng)
		r, err := RootForest(g)
		if err != nil {
			return false
		}
		colors, _, err := ColorForest(g, r)
		return err == nil && properForest(g, colors)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
