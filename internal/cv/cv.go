// Package cv implements Cole–Vishkin deterministic symmetry breaking — the
// O(log* n) technique behind the MIS algorithms the paper builds on (the
// Schneider–Wattenhofer GBG algorithm it cites uses exactly this kind of
// color reduction as its engine). On the synchronous engine it provides:
//
//   - the iterated CV bit reduction on rooted forests: from n initial
//     colors (the IDs) down to 6 in log*-many lockstep rounds;
//   - the classic shift-down + remove phases taking 6 colors to 3;
//   - a deterministic MIS on forests derived from the 3-coloring.
//
// The tests verify properness, the palette bound, and that the measured
// rounds track log*(n) — the quantity the paper's round bounds are built
// from.
package cv

import (
	"fmt"
	"math/bits"

	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

// LogStar returns log₂*(n): how many times log2 must be applied to n until
// the value drops to at most 1.
func LogStar(n float64) int {
	count := 0
	for n > 1 {
		// log2 via float halvings; exactness is irrelevant for a count.
		x := 0.0
		for n >= 2 {
			n /= 2
			x++
		}
		if n > 1 {
			x += n - 1
		}
		n = x
		count++
	}
	return count
}

// ReductionRounds returns the number of CV reduction iterations needed to
// take a palette of size k down to at most 6 (each iteration maps a
// palette of size K to one of size 2·bitlen(K-1)).
func ReductionRounds(k int) int {
	r := 0
	for k > 6 {
		k = 2 * bits.Len(uint(k-1))
		r++
		if r > 64 { // unreachable; safety against misuse
			break
		}
	}
	return r
}

// Rooted is a rooted forest over the graph's nodes: Parent[v] is v's parent
// or -1 for roots.
type Rooted struct {
	Parent []int
}

// RootForest orients an acyclic graph by rooting every component at its
// lowest-ID node. It rejects graphs with cycles.
func RootForest(g *graph.Graph) (*Rooted, error) {
	comps := g.Components()
	if g.M() != g.N()-len(comps) {
		return nil, fmt.Errorf("cv: graph has cycles (m=%d, n=%d, components=%d)", g.M(), g.N(), len(comps))
	}
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
	}
	for _, comp := range comps {
		root := comp[0]
		dist := g.BFSFrom(root)
		for _, v := range comp {
			if v == root {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if dist[u] == dist[v]-1 {
					parent[v] = u
					break
				}
			}
		}
	}
	return &Rooted{Parent: parent}, nil
}

// cvMsg publishes a node's current color (read by its children next round).
type cvMsg struct{ Color int }

// cvNode executes the pipeline in lockstep. Round layout (every round ends
// by publishing the current color):
//
//	round 0                  publish initial color (the ID)
//	rounds 1..R              CV bit-reduction steps (R from ReductionRounds)
//	then, for x = 5, 4, 3, two rounds each:
//	  shift round            adopt the parent's color (roots recolor to a
//	                         different small color); remember the own
//	                         pre-shift color — all children now carry it
//	  remove round           nodes colored x recolor to the smallest color
//	                         in {0,1,2} avoiding the parent's current color
//	                         and the children's (uniform) color
type cvNode struct {
	parent  int
	color   int
	parentC int
	reduceR int
	childC  int // children's uniform color after the last shift
}

func (nd *cvNode) Step(env *sim.SyncEnv, inbox []sim.Message) bool {
	for _, m := range inbox {
		if c, ok := m.Payload.(cvMsg); ok && m.From == nd.parent {
			nd.parentC = c.Color
		}
	}
	r := env.Round
	last := nd.reduceR + 6
	switch {
	case r == 0:
		// Publish only.
	case r <= nd.reduceR:
		pc := nd.parentC
		if nd.parent < 0 {
			pc = nd.color ^ 1 // virtual parent for roots
		}
		nd.color = cvReduce(nd.color, pc)
	case r <= last:
		step := r - nd.reduceR // 1..6
		retiring := 5 - (step-1)/2
		if step%2 == 1 {
			// Shift down.
			nd.childC = nd.color
			if nd.parent >= 0 {
				nd.color = nd.parentC
			} else {
				for c := 0; c < 3; c++ {
					if c != nd.color {
						nd.color = c
						break
					}
				}
			}
		} else if nd.color == retiring {
			// Remove the retiring color. The recoloring class is an
			// independent set of the current proper coloring, so the
			// parent's published color is stable this round, and all
			// children carry childC (the pre-shift color of this node).
			for c := 0; c < 3; c++ {
				if c == nd.childC || (nd.parent >= 0 && c == nd.parentC) {
					continue
				}
				nd.color = c
				break
			}
		}
	default:
		return true
	}
	env.Broadcast(cvMsg{Color: nd.color})
	return false
}

// cvReduce is one Cole–Vishkin step: the lowest bit index where own and
// parent colors differ, concatenated with own's bit there.
func cvReduce(own, parent int) int {
	diff := own ^ parent
	idx := bits.TrailingZeros(uint(diff))
	return idx<<1 | (own >> idx & 1)
}

// ColorForest runs the pipeline and returns a proper 3-coloring (0..2) of
// the forest plus the engine accounting; the rounds are R + 7 with
// R = ReductionRounds(n) = Θ(log* n).
func ColorForest(g *graph.Graph, root *Rooted) ([]int, sim.Stats, error) {
	if len(root.Parent) != g.N() {
		return nil, sim.Stats{}, fmt.Errorf("cv: rooting covers %d of %d nodes", len(root.Parent), g.N())
	}
	reduceR := ReductionRounds(g.N())
	nodes := make([]*cvNode, g.N())
	eng := sim.NewSyncEngine(g, 0, func(id int) sim.SyncNode {
		nodes[id] = &cvNode{parent: root.Parent[id], color: id, parentC: -1, reduceR: reduceR, childC: -1}
		return nodes[id]
	})
	if err := eng.Run(); err != nil {
		return nil, sim.Stats{}, err
	}
	colors := make([]int, g.N())
	for v, nd := range nodes {
		if nd.color < 0 || nd.color > 2 {
			return nil, sim.Stats{}, fmt.Errorf("cv: node %d ended with color %d", v, nd.color)
		}
		colors[v] = nd.color
	}
	for v, p := range root.Parent {
		if p >= 0 && colors[v] == colors[p] {
			return nil, sim.Stats{}, fmt.Errorf("cv: improper: %d and parent %d share color %d", v, p, colors[v])
		}
	}
	return colors, eng.Stats(), nil
}

// ForestMIS computes a deterministic MIS of a forest: CV 3-coloring, then
// the color classes join greedily in order (one conceptual round per
// class). Total O(log* n) rounds — the deterministic bound the paper's
// analysis assumes for its MIS building block on trees.
func ForestMIS(g *graph.Graph) ([]bool, sim.Stats, error) {
	root, err := RootForest(g)
	if err != nil {
		return nil, sim.Stats{}, err
	}
	colors, stats, err := ColorForest(g, root)
	if err != nil {
		return nil, sim.Stats{}, err
	}
	inMIS := make([]bool, g.N())
	blocked := make([]bool, g.N())
	for c := 0; c < 3; c++ {
		for v := 0; v < g.N(); v++ {
			if colors[v] != c || blocked[v] {
				continue
			}
			inMIS[v] = true
			blocked[v] = true
			for _, u := range g.Neighbors(v) {
				blocked[u] = true
			}
		}
	}
	stats.Rounds += 3 // the three class-join rounds
	return inMIS, stats, nil
}
