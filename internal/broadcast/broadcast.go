// Package broadcast implements TDMA broadcast scheduling — distance-2
// vertex coloring, where a slot is assigned to a node and no two nodes
// within two hops may share a slot — the alternative scheme the paper's
// introduction compares link scheduling against. It exists to reproduce
// that comparison: link scheduling admits strictly more concurrency
// (distance-2 neighbors can transmit simultaneously when the intermediate
// node is not a receiver) and shorter effective frames for per-link
// traffic.
package broadcast

import (
	"fmt"

	"fdlsp/internal/graph"
	"fdlsp/internal/mis"
	"fdlsp/internal/sim"
)

// Conflict reports whether nodes u and v may not share a broadcast slot:
// they are distinct and within two hops of each other.
func Conflict(g *graph.Graph, u, v int) bool {
	if u == v {
		return false
	}
	if g.HasEdge(u, v) {
		return true
	}
	for _, w := range g.Neighbors(u) {
		if g.HasEdge(w, v) {
			return true
		}
	}
	return false
}

// Verify checks that colors is a complete distance-2 vertex coloring
// (1-based) of g; it returns the offending node pairs.
func Verify(g *graph.Graph, colors []int) (bool, [][2]int) {
	var bad [][2]int
	if len(colors) != g.N() {
		return false, [][2]int{{-1, -1}}
	}
	for v := 0; v < g.N(); v++ {
		if colors[v] < 1 {
			bad = append(bad, [2]int{v, v})
			continue
		}
		for _, u := range g.Within(v, 2) {
			if u > v && colors[u] == colors[v] {
				bad = append(bad, [2]int{v, u})
			}
		}
	}
	return len(bad) == 0, bad
}

// Slots returns the frame length of a coloring.
func Slots(colors []int) int {
	max := 0
	for _, c := range colors {
		if c > max {
			max = c
		}
	}
	return max
}

// Greedy is the centralized reference: nodes in increasing order take the
// smallest slot unused within two hops. Uses at most Δ²+1 slots.
func Greedy(g *graph.Graph) []int {
	colors := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		used := make(map[int]struct{})
		for _, u := range g.Within(v, 2) {
			if colors[u] > 0 {
				used[colors[u]] = struct{}{}
			}
		}
		c := 1
		for {
			if _, busy := used[c]; !busy {
				break
			}
			c++
		}
		colors[v] = c
	}
	return colors
}

// Distributed computes a broadcast schedule with iterated radius-2 MIS
// competitions (the same flooding machinery DistMIS uses for its secondary
// MIS): in phase k the winners — pairwise more than two hops apart — take
// slot k. It returns the coloring and the communication cost.
func Distributed(g *graph.Graph, seed int64, drawer mis.Drawer) ([]int, sim.Stats, error) {
	if drawer == nil {
		drawer = mis.Luby()
	}
	colors := make([]int, g.N())
	var total sim.Stats
	for slot := 1; ; slot++ {
		uncolored := 0
		competing := make([]bool, g.N())
		for v := 0; v < g.N(); v++ {
			if colors[v] == 0 {
				competing[v] = true
				uncolored++
			}
		}
		if uncolored == 0 {
			return colors, total, nil
		}
		if slot > g.N()+1 {
			return nil, total, fmt.Errorf("broadcast: no progress after %d phases", slot)
		}
		statuses, stats, err := runPhase(g, seed+int64(slot)*999_983, competing, drawer)
		if err != nil {
			return nil, total, err
		}
		total.Rounds += stats.Rounds
		total.Messages += stats.Messages
		progress := false
		for v := 0; v < g.N(); v++ {
			if competing[v] && statuses[v] == mis.InMIS {
				colors[v] = slot
				progress = true
			}
		}
		if !progress {
			return nil, total, fmt.Errorf("broadcast: phase %d selected nobody", slot)
		}
	}
}

type phaseNode struct {
	competing bool
	drawer    mis.Drawer
	comp      *mis.Competition
}

func (nd *phaseNode) Step(env *sim.SyncEnv, inbox []sim.Message) bool {
	if nd.comp == nil {
		var draw func(int) int64
		if nd.competing {
			draw = nd.drawer.New(env.ID, env.Rand)
		}
		nd.comp = mis.NewCompetition(env.ID, 2, nd.competing, draw)
	}
	for _, m := range inbox {
		f, ok := m.Payload.(mis.Flood)
		if !ok {
			panic(fmt.Sprintf("broadcast: unexpected payload %T", m.Payload))
		}
		if relay, ok := nd.comp.Observe(f); ok {
			env.Broadcast(relay)
		}
	}
	for _, f := range nd.comp.StartRound(env.Round) {
		env.Broadcast(f)
	}
	return nd.comp.Done()
}

func runPhase(g *graph.Graph, seed int64, competing []bool, drawer mis.Drawer) ([]mis.Status, sim.Stats, error) {
	nodes := make([]*phaseNode, g.N())
	eng := sim.NewSyncEngine(g, seed, func(id int) sim.SyncNode {
		nodes[id] = &phaseNode{competing: competing[id], drawer: drawer}
		return nodes[id]
	})
	if err := eng.Run(); err != nil {
		return nil, sim.Stats{}, err
	}
	statuses := make([]mis.Status, g.N())
	for id, nd := range nodes {
		if nd.comp != nil {
			statuses[id] = nd.comp.Status()
		} else {
			statuses[id] = mis.Dominated
		}
	}
	return statuses, eng.Stats(), nil
}

// Concurrency compares the two scheduling schemes on the same graph, as
// motivated in the paper's introduction: the average number of simultaneous
// transmissions per slot under broadcast scheduling versus link scheduling.
// linkSlots is the frame produced by an FDLSP algorithm (2m arcs spread
// over linkFrame slots); broadcast spreads n node-transmissions over its
// frame.
func Concurrency(g *graph.Graph, broadcastColors []int, linkFrame int) (broadcastAvg, linkAvg float64) {
	bf := Slots(broadcastColors)
	if bf > 0 {
		broadcastAvg = float64(g.N()) / float64(bf)
	}
	if linkFrame > 0 {
		linkAvg = float64(2*g.M()) / float64(linkFrame)
	}
	return broadcastAvg, linkAvg
}

// LinkServiceSlots returns the number of TDMA slots broadcast scheduling
// needs to serve every directed link once — the apples-to-apples
// comparison with an FDLSP frame. Under broadcast scheduling a node owns
// one slot per frame and a unicast transmission serves one outgoing link,
// so a node with degree d needs d frames; the whole network needs
// frame-length · Δ slots. Link scheduling serves every directed link in a
// single FDLSP frame, which is where its advantage (paper, Section 1)
// comes from.
func LinkServiceSlots(g *graph.Graph, colors []int) int {
	return Slots(colors) * g.MaxDegree()
}
