package broadcast

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fdlsp/internal/coloring"
	"fdlsp/internal/core"
	"fdlsp/internal/geom"
	"fdlsp/internal/graph"
)

func TestConflictDefinition(t *testing.T) {
	g := graph.Path(4)
	if Conflict(g, 0, 0) {
		t.Error("self conflict")
	}
	if !Conflict(g, 0, 1) || !Conflict(g, 0, 2) {
		t.Error("distance 1 and 2 must conflict")
	}
	if Conflict(g, 0, 3) {
		t.Error("distance 3 must not conflict")
	}
}

func TestGreedyValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		colors := Greedy(g)
		if ok, bad := Verify(g, colors); !ok {
			t.Fatalf("trial %d: invalid greedy broadcast schedule %v", trial, bad)
		}
		d := g.MaxDegree()
		if Slots(colors) > d*d+1 {
			t.Fatalf("trial %d: %d slots > Δ²+1", trial, Slots(colors))
		}
	}
}

func TestVerifyCatchesBad(t *testing.T) {
	g := graph.Path(3)
	if ok, _ := Verify(g, []int{1, 2, 1}); ok {
		t.Error("distance-2 clash not caught")
	}
	if ok, _ := Verify(g, []int{1, 2}); ok {
		t.Error("wrong length not caught")
	}
	if ok, _ := Verify(g, []int{1, 2, 0}); ok {
		t.Error("unassigned slot not caught")
	}
	if ok, _ := Verify(g, []int{1, 2, 3}); !ok {
		t.Error("valid coloring rejected")
	}
}

func TestDistributedValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(35)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		colors, stats, err := Distributed(g, int64(trial), nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if ok, bad := Verify(g, colors); !ok {
			t.Fatalf("trial %d: invalid distributed schedule %v", trial, bad)
		}
		if n > 1 && g.M() > 0 && stats.Messages == 0 {
			t.Errorf("trial %d: no communication recorded", trial)
		}
	}
}

// TestLinkSchedulingServesLinksFaster reproduces the paper's introduction
// claim on a sensor field, measured apples-to-apples: the slots needed to
// serve every directed link once. An FDLSP frame does it by construction;
// broadcast scheduling must repeat its frame up to Δ times.
func TestLinkSchedulingServesLinksFaster(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, _ := geom.RandomUDG(120, 12, 1.5, rng)
	bColors := Greedy(g)
	link := coloring.Greedy(g, nil)
	if lf, bf := link.NumColors(), LinkServiceSlots(g, bColors); lf > bf {
		t.Errorf("link frame %d slower than broadcast link service %d — contradicts the paper's motivation", lf, bf)
	}
	// The raw concurrency helper stays well defined.
	bAvg, lAvg := Concurrency(g, bColors, link.NumColors())
	if bAvg <= 0 || lAvg <= 0 {
		t.Error("concurrency not computed")
	}
}

// TestBroadcastAllowsFewerSimultaneousTransmitters demonstrates the
// structural claim: a pair of distance-2 nodes can both transmit in some
// link-scheduling slot but never under broadcast scheduling.
func TestBroadcastAllowsFewerSimultaneousTransmitters(t *testing.T) {
	// Path 0-1-2-3-4: nodes 0 and 2 are distance-2.
	g := graph.Path(5)
	if !Conflict(g, 0, 2) {
		t.Fatal("0 and 2 should conflict under broadcast scheduling")
	}
	// Under link scheduling, arcs (1,0) and (2,3) — transmitters 1 and 2...
	// take the paper's case: transmitters 0 and 2 with receivers away from
	// the middle: (0 transmits to 1)? 1 is the middle. Use arcs (1,0) and
	// (3,4): transmitters 1,3 are distance 2 via node 2, which receives
	// from neither — allowed.
	a, b := graph.Arc{From: 1, To: 0}, graph.Arc{From: 3, To: 4}
	if coloring.Conflict(g, a, b) {
		t.Fatal("link scheduling should allow distance-2 transmitters with a silent middle node")
	}
}

func TestDistributedMatchesGreedySlotOrder(t *testing.T) {
	// Both produce valid schedules; distributed may use more slots but stays
	// within Δ²+1 on these graphs.
	rng := rand.New(rand.NewSource(4))
	g, _ := geom.RandomUDG(60, 8, 1.2, rng)
	colors, _, err := Distributed(g, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := g.MaxDegree()
	if Slots(colors) > d*d+1 {
		t.Errorf("distributed broadcast used %d slots > Δ²+1 = %d", Slots(colors), d*d+1)
	}
}

func TestDistributedPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(18)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		colors, _, err := Distributed(g, seed, nil)
		if err != nil {
			return false
		}
		ok, _ := Verify(g, colors)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Silence an unused-import warning if core is not otherwise needed: the
// DFS run below also sanity-checks the cross-package comparison.
func TestBroadcastVersusDFSSlots(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.ConnectedGNM(40, 100, rng)
	colors := Greedy(g)
	res, err := core.DFS(g, core.DFSOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	bAvg, lAvg := Concurrency(g, colors, res.Slots)
	if bAvg <= 0 || lAvg <= 0 {
		t.Fatal("concurrency not computed")
	}
}
