package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("fdlsp_test_ops_total", "ops")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	g := r.Gauge("fdlsp_test_depth", "depth")
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
	g.SetMax(2)
	if got := g.Value(); got != 3 {
		t.Fatalf("SetMax lowered the gauge: %v", got)
	}
	g.SetMax(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("SetMax = %v, want 7", got)
	}
}

func TestCounterPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter add did not panic")
		}
	}()
	NewRegistry().Counter("fdlsp_test_total", "").Add(-1)
}

func TestReRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.CounterVec("fdlsp_test_total", "h", "k")
	b := r.CounterVec("fdlsp_test_total", "h", "k")
	a.With("x").Inc()
	b.With("x").Inc()
	if got := a.With("x").Value(); got != 2 {
		t.Fatalf("re-registered vec did not share series: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration did not panic")
		}
	}()
	r.GaugeVec("fdlsp_test_total", "h", "k")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("fdlsp_test_seconds", "latency", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 9} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	snap := r.Snapshot()
	if len(snap) != 1 || len(snap[0].Series) != 1 {
		t.Fatalf("unexpected snapshot shape: %+v", snap)
	}
	s := snap[0].Series[0]
	wantCum := []uint64{2, 3, 4, 5} // le=1, le=2, le=4, +Inf
	for i, bk := range s.Buckets {
		if bk.Count != wantCum[i] {
			t.Fatalf("bucket %d cumulative = %d, want %d", i, bk.Count, wantCum[i])
		}
	}
	if s.Sum != 15 {
		t.Fatalf("sum = %v, want 15", s.Sum)
	}
}

func TestTextFormatDeterministicAndSorted(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		v := r.CounterVec("fdlsp_zeta_total", "last family", "engine", "reason")
		v.With("sync", "fault").Add(2)
		v.With("async", "dead").Add(1)
		v.With("async", "fault").Add(4)
		r.Gauge("fdlsp_alpha", "first family").Set(1)
		h := r.Histogram("fdlsp_mid_seconds", "histogram", []float64{0.5})
		h.Observe(0.25)
		h.Observe(0.75)
		return r.Text()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("two identical registries rendered differently:\n%s\n--- vs ---\n%s", a, b)
	}
	wantOrder := []string{
		"# HELP fdlsp_alpha first family",
		"# TYPE fdlsp_alpha gauge",
		"fdlsp_alpha 1",
		"# TYPE fdlsp_mid_seconds histogram",
		`fdlsp_mid_seconds_bucket{le="0.5"} 1`,
		`fdlsp_mid_seconds_bucket{le="+Inf"} 2`,
		"fdlsp_mid_seconds_sum 1",
		"fdlsp_mid_seconds_count 2",
		"# TYPE fdlsp_zeta_total counter",
		`fdlsp_zeta_total{engine="async",reason="dead"} 1`,
		`fdlsp_zeta_total{engine="async",reason="fault"} 4`,
		`fdlsp_zeta_total{engine="sync",reason="fault"} 2`,
	}
	idx := -1
	for _, line := range wantOrder {
		at := strings.Index(a, line)
		if at < 0 {
			t.Fatalf("missing line %q in:\n%s", line, a)
		}
		if at < idx {
			t.Fatalf("line %q out of order in:\n%s", line, a)
		}
		idx = at
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("fdlsp_esc_total", "h", "path").With("a\"b\\c\nd").Inc()
	text := r.Text()
	want := `fdlsp_esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(text, want) {
		t.Fatalf("escaped sample %q not found in:\n%s", want, text)
	}
}

func TestUnlabeledFamiliesExposeZero(t *testing.T) {
	r := NewRegistry()
	r.Counter("fdlsp_idle_total", "never incremented")
	r.CounterVec("fdlsp_labeled_total", "no series yet", "k")
	text := r.Text()
	if !strings.Contains(text, "fdlsp_idle_total 0") {
		t.Fatalf("unlabeled counter should expose a zero sample:\n%s", text)
	}
	if !strings.Contains(text, "# TYPE fdlsp_labeled_total counter") {
		t.Fatalf("labeled family should expose its TYPE header:\n%s", text)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("fdlsp_h_total", "h").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	resp2, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 405 {
		t.Fatalf("POST status = %d, want 405", resp2.StatusCode)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("fdlsp_conc_total", "")
	v := r.CounterVec("fdlsp_conc_labeled_total", "", "worker")
	h := r.Histogram("fdlsp_conc_seconds", "", DefLatencyBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lab := v.With(string(rune('a' + w)))
			for i := 0; i < 1000; i++ {
				c.Inc()
				lab.Inc()
				h.Observe(float64(i) / 1000)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("concurrent counter = %v, want 8000", got)
	}
	if h.Count() != 8000 {
		t.Fatalf("concurrent histogram count = %d, want 8000", h.Count())
	}
}

func TestVecDelete(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("fdlsp_test_del_total", "h", "id")
	gv := r.GaugeVec("fdlsp_test_del_depth", "h", "id")
	hv := r.HistogramVec("fdlsp_test_del_seconds", "h", []float64{1}, "id")
	cv.With("a").Inc()
	cv.With("b").Inc()
	gv.With("a").Set(2)
	hv.With("a").Observe(0.5)

	if !cv.Delete("a") {
		t.Fatal("Delete of a live counter series returned false")
	}
	if cv.Delete("a") {
		t.Fatal("second Delete of the same series returned true")
	}
	if !gv.Delete("a") || !hv.Delete("a") {
		t.Fatal("gauge/histogram Delete of live series returned false")
	}

	text := r.Text()
	if strings.Contains(text, `id="a"`) {
		t.Fatalf("deleted series still scraped:\n%s", text)
	}
	if !strings.Contains(text, `fdlsp_test_del_total{id="b"} 1`) {
		t.Fatalf("sibling series lost by Delete:\n%s", text)
	}
	// The family itself stays registered; With re-creates the series at zero.
	if got := cv.With("a").Value(); got != 0 {
		t.Fatalf("recreated series starts at %v, want 0", got)
	}
}
