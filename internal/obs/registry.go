// Package obs is the repository's observability layer: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms, labeled
// families) with a deterministic snapshot API and Prometheus text-format
// exposition.
//
// The registry exists for two consumers with opposite needs. The service
// (cmd/fdlspd) scrapes a live registry over GET /metrics, so updates must
// be safe under concurrent HTTP handlers. The test harness
// (internal/conformance) asserts that two runs of the same seed produce
// byte-identical snapshots, so exposition must be fully deterministic:
// families sort by name, series sort by label values, label key order is
// fixed at family creation, and floats render via strconv at full
// precision. Nothing in the package reads wall-clock time or global state —
// determinism is the caller's to keep (feed only seeded-run values).
//
// Naming scheme (see DESIGN.md): every family is prefixed fdlsp_ followed
// by the subsystem (sim, transport, core, http), counters end in _total,
// histograms carry a unit suffix (_seconds), gauges are bare nouns.
package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Kind discriminates the three metric types.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric family: a kind, a fixed label-key schema, and
// the series instantiated so far.
type family struct {
	name      string
	help      string
	kind      Kind
	labelKeys []string
	buckets   []float64 // histogram upper bounds, ascending; +Inf implicit
	series    map[string]*series
}

// series is one (family, label values) time series.
type series struct {
	mu        *sync.Mutex // the registry's lock, shared
	labelVals []string
	value     float64  // counter / gauge
	counts    []uint64 // histogram: one per bucket plus the +Inf overflow
	sum       float64
	count     uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the family, creating it on first registration. Re-registering
// with the same schema is idempotent (so independent subsystems can both
// ensure their families exist); a conflicting schema panics — that is a
// programming error, not an operational condition.
func (r *Registry) lookup(name, help string, kind Kind, labelKeys []string, buckets []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:      name,
			help:      help,
			kind:      kind,
			labelKeys: append([]string(nil), labelKeys...),
			buckets:   append([]float64(nil), buckets...),
			series:    make(map[string]*series),
		}
		for i := 1; i < len(f.buckets); i++ {
			if f.buckets[i] <= f.buckets[i-1] {
				panic(fmt.Sprintf("obs: histogram %q buckets not strictly ascending", name))
			}
		}
		r.families[name] = f
		return f
	}
	if f.kind != kind || len(f.labelKeys) != len(labelKeys) {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different schema", name))
	}
	for i, k := range labelKeys {
		if f.labelKeys[i] != k {
			panic(fmt.Sprintf("obs: metric %q re-registered with different label keys", name))
		}
	}
	return f
}

// get returns the series for the given label values, creating it at zero.
func (f *family) get(mu *sync.Mutex, labelVals []string) *series {
	if len(labelVals) != len(f.labelKeys) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labelKeys), len(labelVals)))
	}
	key := ""
	for _, v := range labelVals {
		key += v + "\x00"
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{mu: mu, labelVals: append([]string(nil), labelVals...)}
		if f.kind == KindHistogram {
			s.counts = make([]uint64, len(f.buckets)+1)
		}
		f.series[key] = s
	}
	return s
}

// del removes the series for the given label values, reporting whether it
// existed. The family itself (and its HELP/TYPE header) remains registered.
func (f *family) del(labelVals []string) bool {
	if len(labelVals) != len(f.labelKeys) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labelKeys), len(labelVals)))
	}
	key := ""
	for _, v := range labelVals {
		key += v + "\x00"
	}
	_, ok := f.series[key]
	delete(f.series, key)
	return ok
}

// Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (must be >= 0).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		panic("obs: counter decremented")
	}
	c.s.mu.Lock()
	c.s.value += delta
	c.s.mu.Unlock()
}

// Value returns the current value.
func (c *Counter) Value() float64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.s.value
}

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	g.s.mu.Lock()
	g.s.value = v
	g.s.mu.Unlock()
}

// Add adjusts the value by delta (negative allowed).
func (g *Gauge) Add(delta float64) {
	g.s.mu.Lock()
	g.s.value += delta
	g.s.mu.Unlock()
}

// SetMax raises the gauge to v if v exceeds the current value (peak
// tracking, e.g. transport max-in-flight across runs).
func (g *Gauge) SetMax(v float64) {
	g.s.mu.Lock()
	if v > g.s.value {
		g.s.value = v
	}
	g.s.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.value
}

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.s.mu.Lock()
	idx := len(h.buckets) // +Inf overflow
	for i, ub := range h.buckets {
		if v <= ub {
			idx = i
			break
		}
	}
	h.s.counts[idx]++
	h.s.sum += v
	h.s.count++
	h.s.mu.Unlock()
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.count
}

// Counter registers (or finds) an unlabeled counter. The single series is
// created immediately, so the family exposes a zero sample from the start.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, KindCounter, nil, nil)
	return &Counter{s: f.get(&r.mu, nil)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, KindGauge, nil, nil)
	return &Gauge{s: f.get(&r.mu, nil)}
}

// Histogram registers (or finds) an unlabeled histogram with the given
// ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, KindHistogram, nil, buckets)
	return &Histogram{s: f.get(&r.mu, nil), buckets: f.buckets}
}

// CounterVec is a counter family with labels.
type CounterVec struct {
	r *Registry
	f *family
}

// CounterVec registers (or finds) a labeled counter family. No series exist
// until With is called; the family still exposes its HELP/TYPE header.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &CounterVec{r: r, f: r.lookup(name, help, KindCounter, labelKeys, nil)}
}

// With returns the counter for the given label values (ordered as the keys
// were registered), creating it at zero on first use.
func (v *CounterVec) With(labelVals ...string) *Counter {
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	return &Counter{s: v.f.get(&v.r.mu, labelVals)}
}

// Delete drops the series for the given label values (e.g. when the labeled
// entity — a session, a shard — is destroyed), so a churn of short-lived
// label values cannot grow the scrape without bound. Handles previously
// returned by With for those values keep working but feed a detached
// series; call With again to attach to a fresh one. Reports whether the
// series existed.
func (v *CounterVec) Delete(labelVals ...string) bool {
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	return v.f.del(labelVals)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct {
	r *Registry
	f *family
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &GaugeVec{r: r, f: r.lookup(name, help, KindGauge, labelKeys, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelVals ...string) *Gauge {
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	return &Gauge{s: v.f.get(&v.r.mu, labelVals)}
}

// Delete drops the series for the given label values; see CounterVec.Delete.
func (v *GaugeVec) Delete(labelVals ...string) bool {
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	return v.f.del(labelVals)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	r *Registry
	f *family
}

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelKeys ...string) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &HistogramVec{r: r, f: r.lookup(name, help, KindHistogram, labelKeys, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	return &Histogram{s: v.f.get(&v.r.mu, labelVals), buckets: v.f.buckets}
}

// Delete drops the series for the given label values; see CounterVec.Delete.
func (v *HistogramVec) Delete(labelVals ...string) bool {
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	return v.f.del(labelVals)
}

// DefLatencyBuckets is the default bucket ladder for request-latency
// histograms, in seconds (the Prometheus client default).
func DefLatencyBuckets() []float64 {
	return []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
}

// Label is one key=value pair of a series.
type Label struct {
	Key, Value string
}

// BucketCount is one histogram bucket in a snapshot: the cumulative count of
// observations at or below UpperBound.
type BucketCount struct {
	UpperBound float64 // +Inf for the overflow bucket
	Count      uint64  // cumulative, Prometheus-style
}

// SeriesSnapshot is one series frozen at snapshot time.
type SeriesSnapshot struct {
	Labels  []Label
	Value   float64       // counter / gauge
	Buckets []BucketCount // histogram only
	Sum     float64       // histogram only
	Count   uint64        // histogram only
}

// FamilySnapshot is one family frozen at snapshot time, series sorted by
// label values.
type FamilySnapshot struct {
	Name   string
	Help   string
	Kind   Kind
	Series []SeriesSnapshot
}

// Snapshot freezes the whole registry into a deterministic structure:
// families sorted by name, series sorted lexicographically by label values.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]FamilySnapshot, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			ss := SeriesSnapshot{}
			for i, key := range f.labelKeys {
				ss.Labels = append(ss.Labels, Label{Key: key, Value: s.labelVals[i]})
			}
			switch f.kind {
			case KindHistogram:
				cum := uint64(0)
				for i, c := range s.counts {
					cum += c
					ub := 0.0
					if i < len(f.buckets) {
						ub = f.buckets[i]
						ss.Buckets = append(ss.Buckets, BucketCount{UpperBound: ub, Count: cum})
					} else {
						ss.Buckets = append(ss.Buckets, BucketCount{UpperBound: infUB, Count: cum})
					}
				}
				ss.Sum = s.sum
				ss.Count = s.count
			default:
				ss.Value = s.value
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}
