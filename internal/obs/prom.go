package obs

import (
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// infUB is the histogram overflow bucket's upper bound.
var infUB = math.Inf(1)

// Text renders the registry in the Prometheus text exposition format
// (version 0.0.4). The output is byte-deterministic for a fixed registry
// state: families and series are emitted in the Snapshot order, floats at
// full round-trip precision.
func (r *Registry) Text() string {
	var b strings.Builder
	for _, f := range r.Snapshot() {
		writeFamily(&b, f)
	}
	return b.String()
}

// WriteText writes the Prometheus text rendering to w.
func (r *Registry) WriteText(w io.Writer) error {
	_, err := io.WriteString(w, r.Text())
	return err
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		if req.Method == http.MethodHead {
			return
		}
		_ = r.WriteText(w)
	})
}

func writeFamily(b *strings.Builder, f FamilySnapshot) {
	if f.Help != "" {
		b.WriteString("# HELP ")
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.Help))
		b.WriteByte('\n')
	}
	b.WriteString("# TYPE ")
	b.WriteString(f.Name)
	b.WriteByte(' ')
	b.WriteString(f.Kind.String())
	b.WriteByte('\n')
	for _, s := range f.Series {
		switch f.Kind {
		case KindHistogram:
			for _, bk := range s.Buckets {
				writeSample(b, f.Name+"_bucket", append(append([]Label(nil), s.Labels...), Label{Key: "le", Value: formatUB(bk.UpperBound)}), float64(bk.Count))
			}
			writeSample(b, f.Name+"_sum", s.Labels, s.Sum)
			writeSample(b, f.Name+"_count", s.Labels, float64(s.Count))
		default:
			writeSample(b, f.Name, s.Labels, s.Value)
		}
	}
}

func writeSample(b *strings.Builder, name string, labels []Label, v float64) {
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// formatFloat renders a sample value: integers without an exponent or
// decimal point (the common case — every repository metric is a count),
// other values at full round-trip precision.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatUB renders a histogram bucket bound for the le label.
func formatUB(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
