package benchkit

import (
	"encoding/json"
	"testing"
)

// TestShortSuite is the smoke run CI executes: the short grid must produce
// a fully populated, deterministic-cost report that round-trips as JSON.
func TestShortSuite(t *testing.T) {
	specs := DefaultSpecs(true)
	if len(specs) != 6 {
		t.Fatalf("short grid has %d specs, want 6", len(specs))
	}
	rep, err := Run("smoke", specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(specs) {
		t.Fatalf("%d results for %d specs", len(rep.Results), len(specs))
	}
	if rep.MinIterations != MinIterations || rep.MinBenchNs != MinBenchNs {
		t.Errorf("iteration floors not recorded: %+v", rep)
	}
	for _, m := range rep.Results {
		if m.Iterations < MinIterations {
			t.Errorf("%s: only %d iterations, floor is %d", m.Name, m.Iterations, MinIterations)
		}
		if m.NsPerOp <= 0 || m.AllocsPerOp <= 0 {
			t.Errorf("%s: timing figures not populated: %+v", m.Name, m)
		}
		if m.Slots <= 0 || m.Rounds <= 0 || m.Messages <= 0 {
			t.Errorf("%s: schedule cost not populated: %+v", m.Name, m)
		}
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Suite != "smoke" || len(back.Results) != len(rep.Results) {
		t.Fatal("round-tripped report lost fields")
	}
}

// TestCostDeterministic pins that the schedule-cost half of a measurement
// is identical across repeated runs — the timing varies, the protocol
// accounting must not.
func TestCostDeterministic(t *testing.T) {
	spec := Spec{Name: "sync-n16", Engine: "sync", Nodes: 16, Edges: 48, Seed: 1}
	a, err := measure(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := measure(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Slots != b.Slots || a.Rounds != b.Rounds || a.Messages != b.Messages {
		t.Fatalf("cost drifted between runs: %+v vs %+v", a, b)
	}
}

func TestUnknownEngineRejected(t *testing.T) {
	if _, err := measure(Spec{Name: "bad", Engine: "warp", Nodes: 8, Edges: 24, Seed: 1}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestFullGrid pins the committed baseline's shape: both engines at the
// common sizes, the parallel sync engine's large-scale rows, and the
// incremental session's scale sweep.
func TestFullGrid(t *testing.T) {
	specs := DefaultSpecs(false)
	if len(specs) != 13 {
		t.Fatalf("full grid has %d specs, want 13", len(specs))
	}
	want := map[string]bool{
		"sync-n64": true, "sync-n256": true, "sync-n1024": true, "sync-n4096": true,
		"sync-n16384": true, "sync-n65536": true,
		"async-n64": true, "async-n256": true, "async-n1024": true, "async-n4096": true,
		"incr-n256": true, "incr-n1024": true, "incr-n4096": true,
	}
	for _, s := range specs {
		if !want[s.Name] {
			t.Errorf("unexpected spec %q", s.Name)
		}
		if s.Edges != 3*s.Nodes {
			t.Errorf("%s: edges %d, want 3n = %d", s.Name, s.Edges, 3*s.Nodes)
		}
	}
}

// TestCompareGate exercises the baseline gate: allocation growth beyond the
// tolerance and deterministic-cost drift are fatal, wall-clock movement is
// advisory, and specs missing from either side are skipped.
func TestCompareGate(t *testing.T) {
	m := func(name string, allocs, bytes, ns int64, slots int) Measurement {
		return Measurement{
			Spec:        Spec{Name: name},
			AllocsPerOp: allocs, BytesPerOp: bytes, NsPerOp: ns,
			Slots: slots, Rounds: 10, Messages: 100,
		}
	}
	base := &Report{Results: []Measurement{
		m("a", 1000, 1_000_000, 500, 7),
		m("b", 1000, 1_000_000, 500, 7),
		m("c", 1000, 1_000_000, 500, 7),
		m("base-only", 1, 1, 1, 1),
	}}
	cur := &Report{Results: []Measurement{
		m("a", 1200, 1_000_000, 2000, 7), // +20% allocs ok, ns spike advisory
		m("b", 1300, 1_000_000, 500, 7),  // +30% allocs: fatal
		m("c", 1000, 1_000_000, 500, 8),  // cost drift: fatal
		m("cur-only", 1, 1, 1, 1),
	}}
	cmp := Compare(base, cur, 0.25)
	if len(cmp.Fatal) != 2 {
		t.Fatalf("fatal findings = %v, want 2 (alloc regression + cost drift)", cmp.Fatal)
	}
	if len(cmp.Advisory) != 1 {
		t.Fatalf("advisory findings = %v, want 1 (ns spike)", cmp.Advisory)
	}
	if clean := Compare(base, base, 0.25); len(clean.Fatal) != 0 || len(clean.Advisory) != 0 {
		t.Fatalf("self-comparison not clean: %+v", clean)
	}
}

// TestCompareWallClockGate exercises the wall-clock rule: on specs of
// WallClockMinNodes nodes or more, ns_per_op growth beyond
// WallClockMaxGrowth turns fatal (on top of the usual advisory), while
// small specs only ever report wall clock as advisory no matter how large
// the spike.
func TestCompareWallClockGate(t *testing.T) {
	m := func(name string, nodes int, ns int64) Measurement {
		return Measurement{
			Spec:        Spec{Name: name, Nodes: nodes},
			AllocsPerOp: 1000, BytesPerOp: 1_000_000, NsPerOp: ns,
			Slots: 7, Rounds: 10, Messages: 100,
		}
	}
	base := &Report{Results: []Measurement{
		m("sync-n64", 64, 1_000),
		m("sync-n4096", WallClockMinNodes, 1_000_000),
		m("sync-n65536", 65536, 10_000_000),
	}}

	// A 10x spike on a small spec stays advisory; the same spike at n=4096
	// crosses the generous fatal bar.
	cur := &Report{Results: []Measurement{
		m("sync-n64", 64, 10_000),
		m("sync-n4096", WallClockMinNodes, 10_000_000),
		m("sync-n65536", 65536, 10_000_000),
	}}
	cmp := Compare(base, cur, 0.25)
	if len(cmp.Fatal) != 1 {
		t.Fatalf("fatal findings = %v, want exactly the n=4096 wall-clock regression", cmp.Fatal)
	}
	if len(cmp.Advisory) != 2 {
		t.Fatalf("advisory findings = %v, want the two ns spikes", cmp.Advisory)
	}

	// Growth inside the tolerance band is silent on the fatal side even at
	// the largest scale.
	within := &Report{Results: []Measurement{
		m("sync-n64", 64, 1_100),
		m("sync-n4096", WallClockMinNodes, 2_500_000),
		m("sync-n65536", 65536, 25_000_000),
	}}
	cmp = Compare(base, within, 0.25)
	if len(cmp.Fatal) != 0 {
		t.Fatalf("within-band wall clock flagged fatal: %v", cmp.Fatal)
	}
}

// TestIncrUpdateCostIndependentOfScale pins the incremental engine's
// locality contract through the deterministic cost column: the conflict rows
// a single-link update rewrites (Messages) are bounded by the flipped edge's
// 2-hop neighborhood — a function of local degree, not of instance size — so
// growing the instance 16x must not grow the per-update patch footprint
// anywhere near proportionally.
func TestIncrUpdateCostIndependentOfScale(t *testing.T) {
	small, err := measure(Spec{Name: "incr-n256", Engine: "incr", Nodes: 256, Edges: 768, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	large, err := measure(Spec{Name: "incr-n4096", Engine: "incr", Nodes: 4096, Edges: 12288, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if small.Messages <= 0 || large.Messages <= 0 {
		t.Fatalf("patched-row columns not populated: %d / %d", small.Messages, large.Messages)
	}
	// 16x nodes and arcs; the patched-row count may wobble with the local
	// degrees around the flipped edge but must stay in the same ballpark.
	if large.Messages > 8*small.Messages {
		t.Fatalf("per-update patch cost scaled with the graph: %d rows at n=4096 vs %d at n=256",
			large.Messages, small.Messages)
	}
	// And it must be a vanishing fraction of the whole conflict cache.
	if total := int64(2 * large.Edges); large.Messages*10 > total {
		t.Fatalf("patch rewrote %d of %d rows — not a local update", large.Messages, total)
	}
}
