// Package benchkit is the repository's benchmark baseline harness: it
// measures the end-to-end scheduling latency, allocation profile and
// communication cost of the two scheduling engines — plus the per-update
// cost of the incremental rescheduling session — on fixed seeded instances
// and renders the result as JSON. cmd/fdlsbench writes the committed
// BENCH_sim.json baseline with it; CI runs the short suite as a smoke check
// and gates allocation regressions with Compare. The cost metrics (slots,
// rounds, messages) are the deterministic per-seed values; the timing and
// allocation figures are averaged over at least MinIterations runs and
// MinBenchNs of wall clock, both recorded in the report so a reader can
// judge how trustworthy the averages are.
package benchkit

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"fdlsp/internal/coloring"
	"fdlsp/internal/core"
	"fdlsp/internal/dynamic"
	"fdlsp/internal/graph"
	"fdlsp/internal/incr"
)

// Iteration floors for every measurement. testing.Benchmark-style
// auto-scaling can settle on a single iteration for slow specs, which makes
// the allocation columns hostage to one run's GC and scheduler noise; the
// harness instead always runs at least MinIterations iterations AND at
// least MinBenchNs of wall clock, whichever takes longer.
const (
	MinIterations = 3
	MinBenchNs    = int64(200 * time.Millisecond)
)

// Spec is one benchmark point: an engine ("sync" runs DistMIS on the
// lock-step engine, "async" runs DFS on the discrete-event engine, "incr"
// applies a fixed single-link update batch to a live rescheduling session)
// on a seeded connected G(n,m) instance with m = 3n.
type Spec struct {
	Name   string `json:"name"`
	Engine string `json:"engine"`
	Nodes  int    `json:"nodes"`
	Edges  int    `json:"edges"`
	Seed   int64  `json:"seed"`
}

// Measurement is one spec's outcome: wall-clock and allocation figures
// averaged over the measured iterations plus the run's deterministic
// schedule cost.
type Measurement struct {
	Spec
	Iterations  int   `json:"iterations"`
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	Slots       int   `json:"slots"`
	Rounds      int64 `json:"rounds"`
	Messages    int64 `json:"messages"`
}

// Report is the full baseline document serialized to BENCH_sim.json.
type Report struct {
	// Suite distinguishes the committed full baseline from CI smoke runs.
	Suite      string `json:"suite"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// MinIterations and MinBenchNs record the iteration floors the harness
	// enforced when the report was generated.
	MinIterations int           `json:"min_iterations"`
	MinBenchNs    int64         `json:"min_bench_ns"`
	Results       []Measurement `json:"results"`
}

// DefaultSpecs returns the baseline grid: both scheduling engines at
// n ∈ {64, 256, 1024, 4096}, with the parallel sync engine additionally
// measured at n ∈ {16384, 65536} — the scale the sharded round loop exists
// for — and the incremental session engine at n ∈ {256, 1024, 4096}, where
// the per-update cost columns must hold flat across the scale sweep (the
// point of the patched conflict cache). Short grids are small enough for a
// CI smoke run: {16, 64} for the scheduling engines, {64, 256} for incr.
func DefaultSpecs(short bool) []Spec {
	sizes := []int{64, 256, 1024, 4096}
	if short {
		sizes = []int{16, 64}
	}
	var specs []Spec
	for _, engine := range []string{"sync", "async", "incr"} {
		esizes := sizes
		switch {
		case engine == "sync" && !short:
			esizes = append(append([]int{}, sizes...), 16384, 65536)
		case engine == "incr" && !short:
			esizes = []int{256, 1024, 4096}
		case engine == "incr":
			esizes = []int{64, 256}
		}
		for _, n := range esizes {
			specs = append(specs, Spec{
				Name:   fmt.Sprintf("%s-n%d", engine, n),
				Engine: engine,
				Nodes:  n,
				Edges:  3 * n,
				Seed:   1,
			})
		}
	}
	return specs
}

// Run measures every spec and assembles the report. The instance and the
// schedule cost are deterministic per spec seed; only the timing and
// allocation figures vary between machines.
func Run(suite string, specs []Spec) (*Report, error) {
	rep := &Report{
		Suite:         suite,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		MinIterations: MinIterations,
		MinBenchNs:    MinBenchNs,
	}
	for _, spec := range specs {
		m, err := measure(spec)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		rep.Results = append(rep.Results, m)
	}
	return rep, nil
}

// measure times one spec and records its deterministic schedule cost. One
// untimed warm-up run provides the cost columns and pre-faults the graph's
// topology cache, then the timed loop runs until both iteration floors are
// met. Allocation figures come from runtime.MemStats deltas around the
// whole loop (Mallocs/TotalAlloc are monotonic, so no GC fencing is
// needed), divided by the iteration count.
func measure(spec Spec) (Measurement, error) {
	if spec.Engine == "incr" {
		return measureIncr(spec)
	}
	g := graph.ConnectedGNM(spec.Nodes, spec.Edges, rand.New(rand.NewSource(spec.Seed)))
	run := func() (*core.Result, error) {
		switch spec.Engine {
		case "sync":
			return core.DistMIS(g, core.Options{Seed: spec.Seed})
		case "async":
			return core.DFS(g, core.DFSOptions{Seed: spec.Seed})
		default:
			return nil, fmt.Errorf("unknown engine %q (want sync, async or incr)", spec.Engine)
		}
	}
	res, err := run()
	if err != nil {
		return Measurement{}, err
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	// The harness measures wall clock around whole runs; no timing leaks
	// into the protocols, whose cost columns stay deterministic.
	start := time.Now() //lint:ignore detrand benchmark harness wall-clock measurement, outside protocol code
	iters := 0
	//lint:ignore detrand benchmark harness wall-clock measurement, outside protocol code
	for iters < MinIterations || time.Since(start).Nanoseconds() < MinBenchNs {
		if _, err := run(); err != nil {
			return Measurement{}, err
		}
		iters++
	}
	elapsed := time.Since(start).Nanoseconds() //lint:ignore detrand benchmark harness wall-clock measurement, outside protocol code
	runtime.ReadMemStats(&after)

	return Measurement{
		Spec:        spec,
		Iterations:  iters,
		NsPerOp:     elapsed / int64(iters),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(iters),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
		Slots:       res.Slots,
		Rounds:      res.Stats.Rounds,
		Messages:    res.Stats.Messages,
	}, nil
}

// measureIncr times the incremental rescheduling path: one live session over
// the seeded instance, with each operation applying a drop-and-readd batch
// of the instance's first edge. The warm-up batch pays the initial
// conflict-cache build and provides the deterministic cost columns — Slots
// is the frame after repair, Rounds the repair rounds, and Messages the
// conflict rows rewritten by the cache patch, which is the locality
// contract: it is bounded by the flipped edge's 2-hop neighborhood and must
// not scale with the instance's total arc count. Compare gates on it like
// any other cost column, so a patch path that regresses to whole-graph
// rewrites drifts the baseline and fails CI.
func measureIncr(spec Spec) (Measurement, error) {
	g := graph.ConnectedGNM(spec.Nodes, spec.Edges, rand.New(rand.NewSource(spec.Seed)))
	up, err := incr.New(g, coloring.Greedy(g, nil))
	if err != nil {
		return Measurement{}, err
	}
	e := g.Edges()[0]
	batch := []dynamic.Event{
		{Kind: dynamic.LinkDown, U: e.U, V: e.V},
		{Kind: dynamic.LinkUp, U: e.U, V: e.V},
	}
	rep, err := up.Apply(batch)
	if err != nil {
		return Measurement{}, err
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now() //lint:ignore detrand benchmark harness wall-clock measurement, outside protocol code
	iters := 0
	//lint:ignore detrand benchmark harness wall-clock measurement, outside protocol code
	for iters < MinIterations || time.Since(start).Nanoseconds() < MinBenchNs {
		if _, err := up.Apply(batch); err != nil {
			return Measurement{}, err
		}
		iters++
	}
	elapsed := time.Since(start).Nanoseconds() //lint:ignore detrand benchmark harness wall-clock measurement, outside protocol code
	runtime.ReadMemStats(&after)

	return Measurement{
		Spec:        spec,
		Iterations:  iters,
		NsPerOp:     elapsed / int64(iters),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(iters),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
		Slots:       rep.FrameLength,
		Rounds:      int64(rep.Rounds),
		Messages:    int64(rep.CachePatchedArcs),
	}, nil
}

// JSON renders the report with stable two-space indentation (the committed
// baseline diffs cleanly).
func (r *Report) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Load parses a report previously written with JSON.
func Load(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchkit: parsing report: %w", err)
	}
	return &r, nil
}

// Wall-clock gate thresholds. ns_per_op is machine-dependent, so small
// specs only ever report it as advisory; at n >= WallClockMinNodes a run is
// long enough to average out scheduler and GC noise, and growth beyond
// WallClockMaxGrowth (a generous +200%) is treated as a real performance
// regression and turns fatal. The bar is deliberately loose: it exists to
// catch order-of-magnitude losses (an accidentally serialized engine, a
// quadratic delivery path), not machine-to-machine variance.
const (
	WallClockMinNodes  = 4096
	WallClockMaxGrowth = 2.0
)

// Comparison is the outcome of holding a fresh report against a baseline.
// Fatal findings are meant to fail CI: allocation-count or byte regressions
// beyond the tolerance, any drift in the deterministic cost columns
// (slots, rounds, messages must reproduce exactly per seed), and wall-clock
// growth beyond WallClockMaxGrowth on specs of WallClockMinNodes nodes or
// more. Advisory findings report the remaining wall-clock movement, which
// is machine-dependent and never fails the gate.
type Comparison struct {
	Fatal    []string
	Advisory []string
}

// Compare holds cur against base spec-by-spec (matched by name; specs
// present in only one report are skipped, so a short smoke run can be held
// against the committed full baseline). maxGrowth is the tolerated
// fractional growth in allocs_per_op and bytes_per_op — 0.25 means fail
// beyond +25%.
func Compare(base, cur *Report, maxGrowth float64) Comparison {
	baseline := make(map[string]Measurement, len(base.Results))
	for _, m := range base.Results {
		baseline[m.Name] = m
	}
	var c Comparison
	for _, m := range cur.Results {
		b, ok := baseline[m.Name]
		if !ok {
			continue
		}
		if m.Slots != b.Slots || m.Rounds != b.Rounds || m.Messages != b.Messages {
			c.Fatal = append(c.Fatal, fmt.Sprintf(
				"%s: deterministic cost drifted: slots/rounds/messages %d/%d/%d, baseline %d/%d/%d",
				m.Name, m.Slots, m.Rounds, m.Messages, b.Slots, b.Rounds, b.Messages))
		}
		c.check(&c.Fatal, m.Name, "allocs_per_op", b.AllocsPerOp, m.AllocsPerOp, maxGrowth)
		c.check(&c.Fatal, m.Name, "bytes_per_op", b.BytesPerOp, m.BytesPerOp, maxGrowth)
		c.check(&c.Advisory, m.Name, "ns_per_op", b.NsPerOp, m.NsPerOp, maxGrowth)
		if m.Nodes >= WallClockMinNodes {
			c.check(&c.Fatal, m.Name, "ns_per_op (wall-clock gate)", b.NsPerOp, m.NsPerOp, WallClockMaxGrowth)
		}
	}
	return c
}

func (c *Comparison) check(sink *[]string, name, metric string, base, cur int64, maxGrowth float64) {
	if base <= 0 {
		return
	}
	limit := float64(base) * (1 + maxGrowth)
	if float64(cur) > limit {
		*sink = append(*sink, fmt.Sprintf("%s: %s regressed %.1f%%: %d, baseline %d (limit +%.0f%%)",
			name, metric, 100*(float64(cur)/float64(base)-1), cur, base, 100*maxGrowth))
	}
}
