// Package benchkit is the repository's benchmark baseline harness: it
// measures the end-to-end scheduling latency, allocation profile and
// communication cost of the two engines on fixed seeded instances and
// renders the result as JSON. cmd/fdlsbench writes the committed
// BENCH_sim.json baseline with it; CI runs the short suite as a smoke
// check. Timing uses testing.Benchmark, so iteration counts auto-scale and
// the cost metrics (slots, rounds, messages) stay the deterministic
// per-seed values.
package benchkit

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"fdlsp/internal/core"
	"fdlsp/internal/graph"
)

// Spec is one benchmark point: an engine ("sync" runs DistMIS on the
// lock-step engine, "async" runs DFS on the discrete-event engine) on a
// seeded connected G(n,m) instance with m = 3n.
type Spec struct {
	Name   string `json:"name"`
	Engine string `json:"engine"`
	Nodes  int    `json:"nodes"`
	Edges  int    `json:"edges"`
	Seed   int64  `json:"seed"`
}

// Measurement is one spec's outcome: wall-clock and allocation figures from
// testing.Benchmark plus the run's deterministic schedule cost.
type Measurement struct {
	Spec
	Iterations  int   `json:"iterations"`
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	Slots       int   `json:"slots"`
	Rounds      int64 `json:"rounds"`
	Messages    int64 `json:"messages"`
}

// Report is the full baseline document serialized to BENCH_sim.json.
type Report struct {
	// Suite distinguishes the committed full baseline from CI smoke runs.
	Suite      string        `json:"suite"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []Measurement `json:"results"`
}

// DefaultSpecs returns the baseline grid: both engines at n ∈ {64, 256,
// 1024} (short: {16, 64}, small enough for a CI smoke run).
func DefaultSpecs(short bool) []Spec {
	sizes := []int{64, 256, 1024}
	if short {
		sizes = []int{16, 64}
	}
	var specs []Spec
	for _, engine := range []string{"sync", "async"} {
		for _, n := range sizes {
			specs = append(specs, Spec{
				Name:   fmt.Sprintf("%s-n%d", engine, n),
				Engine: engine,
				Nodes:  n,
				Edges:  3 * n,
				Seed:   1,
			})
		}
	}
	return specs
}

// Run measures every spec and assembles the report. The instance and the
// schedule cost are deterministic per spec seed; only the timing and
// allocation figures vary between machines.
func Run(suite string, specs []Spec) (*Report, error) {
	rep := &Report{
		Suite:      suite,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, spec := range specs {
		m, err := measure(spec)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		rep.Results = append(rep.Results, m)
	}
	return rep, nil
}

// measure times one spec and records its deterministic schedule cost.
func measure(spec Spec) (Measurement, error) {
	g := graph.ConnectedGNM(spec.Nodes, spec.Edges, rand.New(rand.NewSource(spec.Seed)))
	run := func() (*core.Result, error) {
		switch spec.Engine {
		case "sync":
			return core.DistMIS(g, core.Options{Seed: spec.Seed})
		case "async":
			return core.DFS(g, core.DFSOptions{Seed: spec.Seed})
		default:
			return nil, fmt.Errorf("unknown engine %q (want sync or async)", spec.Engine)
		}
	}
	res, err := run()
	if err != nil {
		return Measurement{}, err
	}
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return Measurement{
		Spec:        spec,
		Iterations:  br.N,
		NsPerOp:     br.NsPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
		Slots:       res.Slots,
		Rounds:      res.Stats.Rounds,
		Messages:    res.Stats.Messages,
	}, nil
}

// JSON renders the report with stable two-space indentation (the committed
// baseline diffs cleanly).
func (r *Report) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
