package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewAndBasicOps(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("fresh graph: n=%d m=%d", g.N(), g.M())
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1) // duplicate: no-op
	if g.M() != 2 {
		t.Errorf("M=%d after 2 distinct edges", g.M())
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(0, 1) {
		t.Error("edge should be symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge")
	}
	if got := g.Degree(1); got != 2 {
		t.Errorf("deg(1)=%d", got)
	}
	g.RemoveEdge(0, 1)
	if g.M() != 1 || g.HasEdge(0, 1) {
		t.Error("remove failed")
	}
	g.RemoveEdge(0, 1) // idempotent
	if g.M() != 1 {
		t.Error("double remove changed count")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	New(2).AddEdge(1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range node")
		}
	}()
	New(2).AddEdge(0, 2)
}

func TestNeighborsSorted(t *testing.T) {
	g := New(6)
	for _, v := range []int{5, 2, 4, 1} {
		g.AddEdge(3, v)
	}
	if got := g.Neighbors(3); !reflect.DeepEqual(got, []int{1, 2, 4, 5}) {
		t.Errorf("neighbors = %v", got)
	}
}

func TestEdgesSortedAndComplete(t *testing.T) {
	g := Complete(4)
	es := g.Edges()
	if len(es) != 6 {
		t.Fatalf("K4 has %d edges", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i-1].U > es[i].U || (es[i-1].U == es[i].U && es[i-1].V >= es[i].V) {
			t.Errorf("edges not sorted: %v before %v", es[i-1], es[i])
		}
	}
}

func TestDegreeStats(t *testing.T) {
	g := Star(5)
	if g.MaxDegree() != 4 {
		t.Errorf("star Δ=%d", g.MaxDegree())
	}
	if got := g.AvgDegree(); got != 1.6 {
		t.Errorf("star avg degree %v", got)
	}
	if New(0).MaxDegree() != 0 || New(0).AvgDegree() != 0 {
		t.Error("empty graph stats")
	}
}

func TestCloneAndEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := GNM(20, 50, rng)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone differs")
	}
	c.AddEdge(0, findNonNeighbor(c, 0))
	if g.Equal(c) {
		t.Fatal("equal after modification")
	}
}

func findNonNeighbor(g *Graph, v int) int {
	for u := 0; u < g.N(); u++ {
		if u != v && !g.HasEdge(v, u) {
			return u
		}
	}
	panic("no non-neighbor")
}

func TestCommonNeighbors(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	g.AddEdge(1, 3)
	g.AddEdge(0, 4)
	if got := g.CommonNeighbors(0, 1); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("common = %v", got)
	}
}

func TestBFSAndDist(t *testing.T) {
	g := Path(5)
	d := g.BFSFrom(0)
	if !reflect.DeepEqual(d, []int{0, 1, 2, 3, 4}) {
		t.Errorf("bfs = %v", d)
	}
	if g.Dist(0, 4) != 4 || g.Dist(2, 2) != 0 {
		t.Error("dist wrong")
	}
	g2 := New(3)
	g2.AddEdge(0, 1)
	if g2.Dist(0, 2) != -1 {
		t.Error("disconnected dist should be -1")
	}
	if d := g2.BFSFrom(0); d[2] != -1 {
		t.Error("bfs unreachable should be -1")
	}
}

func TestWithin(t *testing.T) {
	g := Path(7)
	if got := g.Within(3, 2); !reflect.DeepEqual(got, []int{1, 2, 4, 5}) {
		t.Errorf("within(3,2) = %v", got)
	}
	if got := g.Within(0, 0); got != nil {
		t.Errorf("within r=0 = %v", got)
	}
	if got := g.Within(0, 100); len(got) != 6 {
		t.Errorf("within huge radius = %v", got)
	}
}

func TestConnectedAndComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	if g.Connected() {
		t.Error("should be disconnected")
	}
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if !reflect.DeepEqual(comps[1], []int{2, 3, 4}) {
		t.Errorf("comps[1] = %v", comps[1])
	}
	if !Path(4).Connected() || !New(0).Connected() || !New(1).Connected() {
		t.Error("connectivity of simple graphs")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Cycle(6)
	sub, ids := g.InducedSubgraph([]int{0, 1, 2, 4})
	if sub.N() != 4 {
		t.Fatalf("sub n=%d", sub.N())
	}
	if !reflect.DeepEqual(ids, []int{0, 1, 2, 4}) {
		t.Errorf("ids = %v", ids)
	}
	// Edges kept: {0,1},{1,2}; edge {2,3},{3,4},{4,5},{5,0} dropped.
	if sub.M() != 2 || !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) {
		t.Errorf("induced edges wrong: m=%d", sub.M())
	}
}

func TestArcs(t *testing.T) {
	g := Path(3)
	arcs := g.Arcs()
	if len(arcs) != 4 {
		t.Fatalf("bi-directed P3 has %d arcs", len(arcs))
	}
	if arcs[0] != (Arc{From: 0, To: 1}) {
		t.Errorf("arcs[0] = %v", arcs[0])
	}
	a := Arc{From: 2, To: 5}
	if a.Reverse() != (Arc{From: 5, To: 2}) {
		t.Error("reverse")
	}
	if a.Edge() != (Edge{U: 2, V: 5}) || a.Reverse().Edge() != a.Edge() {
		t.Error("arc edge canonicalization")
	}
	if got := g.IncidentArcs(1); len(got) != 4 {
		t.Errorf("incident arcs of middle node = %v", got)
	}
	if got := g.OutArcs(1); len(got) != 2 || got[0].From != 1 {
		t.Errorf("out arcs = %v", got)
	}
	if got := g.InArcs(1); len(got) != 2 || got[0].To != 1 {
		t.Errorf("in arcs = %v", got)
	}
}

func TestGenerators(t *testing.T) {
	if g := Complete(6); g.M() != 15 || g.MaxDegree() != 5 {
		t.Error("K6 wrong")
	}
	if g := CompleteBipartite(3, 4); g.M() != 12 || g.MaxDegree() != 4 {
		t.Error("K3,4 wrong")
	}
	if g := Cycle(7); g.M() != 7 || g.MaxDegree() != 2 || !g.Connected() {
		t.Error("C7 wrong")
	}
	if g := Path(1); g.M() != 0 {
		t.Error("P1 wrong")
	}
	if g := Grid(3, 4); g.M() != 17 || g.N() != 12 {
		t.Errorf("grid wrong m=%d", Grid(3, 4).M())
	}
	if g := Star(7); g.M() != 6 || g.Degree(0) != 6 {
		t.Error("star wrong")
	}
}

func TestRandomTreeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20; i++ {
		n := 1 + rng.Intn(50)
		g := RandomTree(n, rng)
		if g.M() != n-1 || !g.Connected() {
			t.Fatalf("tree n=%d m=%d connected=%v", n, g.M(), g.Connected())
		}
	}
}

func TestGNMProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 30; i++ {
		n := 2 + rng.Intn(30)
		maxM := n * (n - 1) / 2
		m := rng.Intn(maxM + 1)
		g := GNM(n, m, rng)
		if g.M() != m || g.N() != n {
			t.Fatalf("GNM(%d,%d) produced n=%d m=%d", n, m, g.N(), g.M())
		}
	}
	// Dense path exercises the shuffle branch.
	g := GNM(10, 44, rng)
	if g.M() != 44 {
		t.Errorf("dense GNM m=%d", g.M())
	}
}

func TestConnectedGNM(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 20; i++ {
		n := 2 + rng.Intn(40)
		maxExtra := n*(n-1)/2 - (n - 1)
		m := n - 1 + rng.Intn(maxExtra+1)
		g := ConnectedGNM(n, m, rng)
		if !g.Connected() || g.M() != m {
			t.Fatalf("ConnectedGNM(%d,%d): connected=%v m=%d", n, m, g.Connected(), g.M())
		}
	}
}

func TestGNMTooManyEdgesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GNM(3, 4, rand.New(rand.NewSource(1)))
}

// Property: Dist is symmetric and satisfies the triangle inequality on
// random connected graphs.
func TestDistMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(15)
		maxExtra := n*(n-1)/2 - (n - 1)
		g := ConnectedGNM(n, n-1+r.Intn(maxExtra+1), r)
		a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		dab, dba := g.Dist(a, b), g.Dist(b, a)
		if dab != dba {
			return false
		}
		return g.Dist(a, c) <= dab+g.Dist(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the degree sum equals 2m.
func TestHandshakeLemma(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		g := GNM(n, r.Intn(n*(n-1)/2+1), r)
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
