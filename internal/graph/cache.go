package graph

import (
	"sort"
	"sync"
)

// topoCache is an immutable snapshot of the graph's sorted adjacency
// structure. It is built lazily on first use, shared by every reader, and
// dropped wholesale when the graph mutates (AddEdge/RemoveEdge), so a cache
// pointer obtained before a mutation never observes the new topology.
//
// Invariants: every slice is sorted (neighbor lists ascending, arc lists by
// (From, To)), nothing is mutated after build, and concurrent readers may
// share the slices freely. Callers of the *View accessors must treat the
// returned slices as read-only.
type topoCache struct {
	nbrs     [][]int // per-node sorted neighbor lists
	arcs     []Arc   // all 2m arcs, sorted by (From, To)
	incident [][]Arc // per-node arcs touching v, sorted by (From, To)
	out      [][]Arc // per-node arcs leaving v, sorted by To
	in       [][]Arc // per-node arcs entering v, sorted by From
	index    map[Arc]int32

	// aux holds derived structures (e.g. coloring's distance-2 conflict
	// sets) keyed by an owner-chosen key. Tying them to the topoCache
	// means a graph mutation invalidates them for free.
	auxMu sync.Mutex
	aux   map[any]any
}

// topo returns the current topology cache, building it if needed. Racing
// builders produce identical caches, so losing the CompareAndSwap just
// discards a duplicate.
func (g *Graph) topo() *topoCache {
	if c := g.cache.Load(); c != nil {
		return c
	}
	c := g.buildTopo()
	if g.cache.CompareAndSwap(nil, c) {
		return c
	}
	return g.cache.Load()
}

func (g *Graph) buildTopo() *topoCache {
	n := len(g.adj)
	c := &topoCache{
		nbrs:     make([][]int, n),
		incident: make([][]Arc, n),
		out:      make([][]Arc, n),
		in:       make([][]Arc, n),
		index:    make(map[Arc]int32, 2*g.m),
	}
	arcs := make([]Arc, 0, 2*g.m)
	for v := 0; v < n; v++ {
		nb := make([]int, 0, len(g.adj[v]))
		for u := range g.adj[v] {
			nb = append(nb, u)
		}
		sort.Ints(nb)
		c.nbrs[v] = nb

		out := make([]Arc, len(nb))
		in := make([]Arc, len(nb))
		for i, u := range nb {
			out[i] = Arc{From: v, To: u}
			in[i] = Arc{From: u, To: v}
		}
		c.out[v] = out
		c.in[v] = in
		// out[v] is sorted by To and v increases, so appending per node
		// yields the global (From, To) order without a sort pass.
		arcs = append(arcs, out...)
	}
	for v := 0; v < n; v++ {
		nb := c.nbrs[v]
		inc := make([]Arc, 0, 2*len(nb))
		// (From, To) order: arcs {u,v} with u < v first, then the {v,*}
		// block, then {u,v} with u > v — each group ascending already.
		for _, u := range nb {
			if u < v {
				inc = append(inc, Arc{From: u, To: v})
			}
		}
		inc = append(inc, c.out[v]...)
		for _, u := range nb {
			if u > v {
				inc = append(inc, Arc{From: u, To: v})
			}
		}
		c.incident[v] = inc
	}
	for i, a := range arcs {
		c.index[a] = int32(i)
	}
	c.arcs = arcs
	return c
}

// invalidate drops the topology cache (and every aux structure hanging off
// it). Called by the mutating operations.
func (g *Graph) invalidate() { g.cache.Store(nil) }

// NeighborsView returns the sorted neighbors of v as a shared slice. The
// slice is immutable: callers must not modify it. It remains valid until the
// next AddEdge/RemoveEdge.
func (g *Graph) NeighborsView(v int) []int {
	g.check(v)
	return g.topo().nbrs[v]
}

// ArcsView returns all 2m arcs sorted by (From, To) as a shared, read-only
// slice, valid until the next mutation.
func (g *Graph) ArcsView() []Arc { return g.topo().arcs }

// IncidentArcsView returns the arcs with v as an endpoint, sorted by
// (From, To), as a shared, read-only slice valid until the next mutation.
func (g *Graph) IncidentArcsView(v int) []Arc {
	g.check(v)
	return g.topo().incident[v]
}

// OutArcsView returns the arcs leaving v, sorted by head, as a shared,
// read-only slice valid until the next mutation.
func (g *Graph) OutArcsView(v int) []Arc {
	g.check(v)
	return g.topo().out[v]
}

// InArcsView returns the arcs entering v, sorted by tail, as a shared,
// read-only slice valid until the next mutation.
func (g *Graph) InArcsView(v int) []Arc {
	g.check(v)
	return g.topo().in[v]
}

// ArcIndex returns a's position in ArcsView() and whether a is an arc of the
// graph. Indices are dense in [0, 2M()) and stable until the next mutation.
func (g *Graph) ArcIndex(a Arc) (int, bool) {
	i, ok := g.topo().index[a]
	return int(i), ok
}

// Aux returns the auxiliary value for key, invoking build at most once per
// topology version to create it. The value shares the topology cache's
// lifetime: any AddEdge/RemoveEdge discards it, and the next Aux call
// rebuilds against the new topology. build must not mutate the graph and
// must produce a value safe for concurrent readers, since the result is
// shared. Distinct packages should use distinct unexported key types to
// avoid collisions.
func (g *Graph) Aux(key any, build func() any) any {
	c := g.topo()
	c.auxMu.Lock()
	defer c.auxMu.Unlock()
	if c.aux == nil {
		c.aux = make(map[any]any)
	}
	if v, ok := c.aux[key]; ok {
		return v
	}
	v := build()
	c.aux[key] = v
	return v
}
