package graph

import (
	"sort"
	"sync"
	"sync/atomic"
)

// topoCache is a snapshot of the graph's sorted adjacency structure. It is
// built lazily on first use and shared by every reader. A mutation
// (AddEdge/RemoveEdge) normally *patches* it in place: the per-node rows of
// the two endpoints are replaced copy-on-write (previously returned view
// slices are never written through), the global arc list is marked stale and
// rebuilt lazily, and the arc-id index is updated for just the two arcs that
// appeared or vanished. Only when no cache exists yet — or patching is
// disabled via SetTopoPatching — does a mutation fall back to dropping the
// cache wholesale.
//
// Invariants: every row slice is sorted (neighbor lists ascending, arc lists
// by (From, To)), row slices are never mutated after publication (a patch
// swaps in freshly allocated rows), and concurrent readers may share the
// slices freely. Callers of the *View accessors must treat the returned
// slices as read-only; a slice stays valid (describing the topology at the
// time of the call) until the caller lets go of it, but after a mutation it
// no longer reflects the live graph.
type topoCache struct {
	nbrs     [][]int // per-node sorted neighbor lists
	incident [][]Arc // per-node arcs touching v, sorted by (From, To)
	out      [][]Arc // per-node arcs leaving v, sorted by To
	in       [][]Arc // per-node arcs entering v, sorted by From

	// index assigns every live arc a stable id: ids survive patches (an
	// arc keeps its id until removed) and removed ids are recycled LIFO
	// through freeIDs, so ids stay dense in [0, idBound). After a fresh
	// build ids coincide with positions in the sorted arc list; patches
	// break that coincidence — consumers needing sorted order iterate
	// ArcsView, consumers needing a dense table index size it ArcIDBound.
	index   map[Arc]int32
	freeIDs []int32
	idBound int32

	// arcs caches the sorted global arc list. A patch clears it; the next
	// ArcsView rebuilds it from the (already sorted) out rows in one
	// append pass. Atomic so the lazy rebuild double-checks race-free.
	// arcsMu is deliberately separate from auxMu: Aux build callbacks run
	// under auxMu and are allowed to call ArcsView.
	arcs   atomic.Pointer[[]Arc]
	arcsMu sync.Mutex

	// aux holds derived structures (e.g. coloring's distance-2 conflict
	// sets) keyed by an owner-chosen key. A patch deletes every aux value
	// except those implementing AuxPatchable, which survive and re-sync
	// themselves from the mutation journal.
	auxMu sync.Mutex
	aux   map[any]any
}

// AuxPatchable marks an Aux value that stays correct across topology
// patches by consuming the graph's edge-delta journal (MutEpoch /
// EdgeDeltasSince). Values without the marker are deleted from the aux
// table on every mutation, exactly as the old invalidate-wholesale path
// did for them.
type AuxPatchable interface {
	AuxSurvivesMutation()
}

// EdgeDelta is one journaled topology mutation: the edge, its direction of
// change, and the stable arc ids of (U,V) and (V,U) — assigned ids for an
// addition, the just-freed ids for a removal.
type EdgeDelta struct {
	U, V       int
	Added      bool
	IDUV, IDVU int32
}

// maxTopoJournal bounds the mutation journal. Aux consumers further behind
// than this rebuild from scratch instead of replaying — the bound only
// exists so an unread journal cannot grow without limit.
const maxTopoJournal = 512

// topo returns the current topology cache, building it if needed. Racing
// builders produce identical caches, so losing the CompareAndSwap just
// discards a duplicate.
func (g *Graph) topo() *topoCache {
	if c := g.cache.Load(); c != nil {
		return c
	}
	c := g.buildTopo()
	if g.cache.CompareAndSwap(nil, c) {
		return c
	}
	return g.cache.Load()
}

func (g *Graph) buildTopo() *topoCache {
	n := len(g.adj)
	c := &topoCache{
		nbrs:     make([][]int, n),
		incident: make([][]Arc, n),
		out:      make([][]Arc, n),
		in:       make([][]Arc, n),
		index:    make(map[Arc]int32, 2*g.m),
	}
	arcs := make([]Arc, 0, 2*g.m)
	for v := 0; v < n; v++ {
		nb := make([]int, 0, len(g.adj[v]))
		for u := range g.adj[v] {
			nb = append(nb, u)
		}
		sort.Ints(nb)
		c.nbrs[v] = nb

		out := make([]Arc, len(nb))
		in := make([]Arc, len(nb))
		for i, u := range nb {
			out[i] = Arc{From: v, To: u}
			in[i] = Arc{From: u, To: v}
		}
		c.out[v] = out
		c.in[v] = in
		// out[v] is sorted by To and v increases, so appending per node
		// yields the global (From, To) order without a sort pass.
		arcs = append(arcs, out...)
	}
	for v := 0; v < n; v++ {
		nb := c.nbrs[v]
		inc := make([]Arc, 0, 2*len(nb))
		// (From, To) order: arcs {u,v} with u < v first, then the {v,*}
		// block, then {u,v} with u > v — each group ascending already.
		for _, u := range nb {
			if u < v {
				inc = append(inc, Arc{From: u, To: v})
			}
		}
		inc = append(inc, c.out[v]...)
		for _, u := range nb {
			if u > v {
				inc = append(inc, Arc{From: u, To: v})
			}
		}
		c.incident[v] = inc
	}
	for i, a := range arcs {
		c.index[a] = int32(i)
	}
	c.idBound = int32(len(arcs))
	c.arcs.Store(&arcs)
	return c
}

// invalidate drops the topology cache (and every aux structure hanging off
// it). Called by the fallback mutation path and bulk loaders.
func (g *Graph) invalidate() { g.cache.Store(nil) }

// resetTopo discards all cached topology state after a wholesale graph
// replacement (deserialization): the epoch advances so stale incremental
// consumers cannot mistake the new graph for the old, and the journal is
// truncated so they fall back to a full rebuild.
func (g *Graph) resetTopo() {
	e := g.epoch.Load() + 1
	g.epoch.Store(e)
	g.journalReset(e)
	g.invalidate()
}

// mutated records one applied edge change: it bumps the mutation epoch and
// either patches the live cache in place (journaling the delta for aux
// consumers) or, when no cache exists or patching is off, resets the journal
// and drops the cache as the pre-patch implementation did.
func (g *Graph) mutated(u, v int, added bool) {
	e := g.epoch.Load() + 1
	g.epoch.Store(e)
	c := g.cache.Load()
	if c == nil || g.noPatch {
		g.journalReset(e)
		g.invalidate()
		return
	}
	var d EdgeDelta
	if added {
		d = c.patchAdd(u, v)
	} else {
		d = c.patchRemove(u, v)
	}
	d.U, d.V, d.Added = u, v, added
	g.journalAppend(d)
	c.dropStaleAux()
}

// journalReset discards the journal; the next possible entry is epoch e+1.
func (g *Graph) journalReset(e uint64) {
	g.journal = g.journal[:0]
	g.jFirst = e + 1
}

// journalAppend records d (the delta of the current epoch), compacting the
// backing slice once it doubles past the retention bound.
func (g *Graph) journalAppend(d EdgeDelta) {
	g.journal = append(g.journal, d)
	if len(g.journal) > 2*maxTopoJournal {
		drop := len(g.journal) - maxTopoJournal
		copy(g.journal, g.journal[drop:])
		g.journal = g.journal[:maxTopoJournal]
		g.jFirst += uint64(drop)
	}
}

// MutEpoch returns the number of mutations applied to g so far. Aux
// consumers snapshot it at build time and hand it back to EdgeDeltasSince
// to learn what changed.
func (g *Graph) MutEpoch() uint64 { return g.epoch.Load() }

// EdgeDeltasSince returns the journaled mutations applied after the given
// epoch, oldest first, and whether the journal still covers that range. A
// false answer means entries were truncated (or a non-patched mutation broke
// continuity) and the consumer must rebuild from the live topology instead
// of replaying. The returned slice aliases the journal: it is valid until
// the next mutation.
func (g *Graph) EdgeDeltasSince(epoch uint64) ([]EdgeDelta, bool) {
	cur := g.epoch.Load()
	if epoch == cur {
		return nil, true
	}
	if epoch > cur || g.jFirst > epoch+1 {
		return nil, false
	}
	lo := epoch + 1 - g.jFirst
	hi := cur + 1 - g.jFirst
	if hi > uint64(len(g.journal)) {
		return nil, false
	}
	return g.journal[lo:hi], true
}

// SetTopoPatching toggles the in-place cache patch path (on by default).
// With patching off every mutation drops the cache wholesale and rebuilds
// on next read — the reference behavior the patch-vs-rebuild conformance
// oracle compares against.
func (g *Graph) SetTopoPatching(enabled bool) {
	g.noPatch = !enabled
	g.journalReset(g.epoch.Load())
	g.invalidate()
}

// allocID hands out a stable arc id, recycling freed ids LIFO.
func (c *topoCache) allocID() int32 {
	if n := len(c.freeIDs); n > 0 {
		id := c.freeIDs[n-1]
		c.freeIDs = c.freeIDs[:n-1]
		return id
	}
	id := c.idBound
	c.idBound++
	return id
}

// insertSorted returns a fresh copy of row with x inserted at position
// determined by less (row itself is never written — readers may share it).
func insertSortedInt(row []int, x int) []int {
	i := sort.SearchInts(row, x)
	out := make([]int, len(row)+1)
	copy(out, row[:i])
	out[i] = x
	copy(out[i+1:], row[i:])
	return out
}

func removeSortedInt(row []int, x int) []int {
	i := sort.SearchInts(row, x)
	out := make([]int, len(row)-1)
	copy(out, row[:i])
	copy(out[i:], row[i+1:])
	return out
}

func arcLess(a, b Arc) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	return a.To < b.To
}

func insertSortedArc(row []Arc, a Arc) []Arc {
	i := sort.Search(len(row), func(i int) bool { return !arcLess(row[i], a) })
	out := make([]Arc, len(row)+1)
	copy(out, row[:i])
	out[i] = a
	copy(out[i+1:], row[i:])
	return out
}

func removeSortedArc(row []Arc, a Arc) []Arc {
	i := sort.Search(len(row), func(i int) bool { return !arcLess(row[i], a) })
	out := make([]Arc, len(row)-1)
	copy(out, row[:i])
	copy(out[i:], row[i+1:])
	return out
}

// patchAdd splices the edge {u,v} into the cache: copy-on-write row updates
// for the two endpoints, fresh stable ids for the two new arcs, stale global
// arc list. O(deg(u)+deg(v)) — nothing outside the endpoints' rows is
// touched.
func (c *topoCache) patchAdd(u, v int) EdgeDelta {
	auv, avu := Arc{From: u, To: v}, Arc{From: v, To: u}
	c.nbrs[u] = insertSortedInt(c.nbrs[u], v)
	c.nbrs[v] = insertSortedInt(c.nbrs[v], u)
	c.out[u] = insertSortedArc(c.out[u], auv)
	c.in[u] = insertSortedArc(c.in[u], avu)
	c.out[v] = insertSortedArc(c.out[v], avu)
	c.in[v] = insertSortedArc(c.in[v], auv)
	c.incident[u] = insertSortedArc(insertSortedArc(c.incident[u], auv), avu)
	c.incident[v] = insertSortedArc(insertSortedArc(c.incident[v], auv), avu)
	d := EdgeDelta{IDUV: c.allocID(), IDVU: c.allocID()}
	c.index[auv] = d.IDUV
	c.index[avu] = d.IDVU
	c.arcs.Store(nil)
	return d
}

// patchRemove splices the edge {u,v} out of the cache, freeing the two arc
// ids for reuse.
func (c *topoCache) patchRemove(u, v int) EdgeDelta {
	auv, avu := Arc{From: u, To: v}, Arc{From: v, To: u}
	c.nbrs[u] = removeSortedInt(c.nbrs[u], v)
	c.nbrs[v] = removeSortedInt(c.nbrs[v], u)
	c.out[u] = removeSortedArc(c.out[u], auv)
	c.in[u] = removeSortedArc(c.in[u], avu)
	c.out[v] = removeSortedArc(c.out[v], avu)
	c.in[v] = removeSortedArc(c.in[v], auv)
	c.incident[u] = removeSortedArc(removeSortedArc(c.incident[u], auv), avu)
	c.incident[v] = removeSortedArc(removeSortedArc(c.incident[v], auv), avu)
	d := EdgeDelta{IDUV: c.index[auv], IDVU: c.index[avu]}
	delete(c.index, auv)
	delete(c.index, avu)
	c.freeIDs = append(c.freeIDs, d.IDUV, d.IDVU)
	c.arcs.Store(nil)
	return d
}

// dropStaleAux deletes every aux value that cannot survive a mutation.
func (c *topoCache) dropStaleAux() {
	c.auxMu.Lock()
	for k, v := range c.aux {
		if _, ok := v.(AuxPatchable); !ok {
			delete(c.aux, k)
		}
	}
	c.auxMu.Unlock()
}

// rebuildArcs reconstructs the sorted global arc list from the out rows
// (each sorted by To, node order ascending — so one append pass yields
// (From, To) order). Double-checked under arcsMu so racing readers build it
// once.
func (c *topoCache) rebuildArcs() []Arc {
	c.arcsMu.Lock()
	defer c.arcsMu.Unlock()
	if p := c.arcs.Load(); p != nil {
		return *p
	}
	total := 0
	for v := range c.out {
		total += len(c.out[v])
	}
	arcs := make([]Arc, 0, total)
	for v := range c.out {
		arcs = append(arcs, c.out[v]...)
	}
	c.arcs.Store(&arcs)
	return arcs
}

// NeighborsView returns the sorted neighbors of v as a shared slice. The
// slice is immutable: callers must not modify it. After the next
// AddEdge/RemoveEdge it no longer reflects the live topology.
func (g *Graph) NeighborsView(v int) []int {
	g.check(v)
	return g.topo().nbrs[v]
}

// ArcsView returns all 2m arcs sorted by (From, To) as a shared, read-only
// slice describing the topology at call time.
func (g *Graph) ArcsView() []Arc {
	c := g.topo()
	if p := c.arcs.Load(); p != nil {
		return *p
	}
	return c.rebuildArcs()
}

// IncidentArcsView returns the arcs with v as an endpoint, sorted by
// (From, To), as a shared, read-only slice.
func (g *Graph) IncidentArcsView(v int) []Arc {
	g.check(v)
	return g.topo().incident[v]
}

// OutArcsView returns the arcs leaving v, sorted by head, as a shared,
// read-only slice.
func (g *Graph) OutArcsView(v int) []Arc {
	g.check(v)
	return g.topo().out[v]
}

// InArcsView returns the arcs entering v, sorted by tail, as a shared,
// read-only slice.
func (g *Graph) InArcsView(v int) []Arc {
	g.check(v)
	return g.topo().in[v]
}

// ArcIndex returns a's stable id and whether a is an arc of the graph. Ids
// are dense in [0, ArcIDBound()): after a fresh cache build they coincide
// with positions in ArcsView, and across patched mutations each surviving
// arc keeps its id while removed ids are recycled to later additions. Use
// ArcIDBound — not 2*M() — to size tables indexed by arc id.
func (g *Graph) ArcIndex(a Arc) (int, bool) {
	i, ok := g.topo().index[a]
	return int(i), ok
}

// ArcIDBound returns the exclusive upper bound of the stable arc ids
// currently assigned (at least 2*M(), more after net removals whose ids
// have not been recycled yet).
func (g *Graph) ArcIDBound() int { return int(g.topo().idBound) }

// Aux returns the auxiliary value for key, invoking build at most once per
// build of the topology cache to create it. Values not implementing
// AuxPatchable are discarded on any AddEdge/RemoveEdge and rebuilt by the
// next Aux call against the new topology; AuxPatchable values survive
// patched mutations and are expected to re-sync themselves via MutEpoch/
// EdgeDeltasSince. build must not mutate the graph and must produce a value
// safe for concurrent readers, since the result is shared. Distinct
// packages should use distinct unexported key types to avoid collisions.
func (g *Graph) Aux(key any, build func() any) any {
	c := g.topo()
	c.auxMu.Lock()
	defer c.auxMu.Unlock()
	if c.aux == nil {
		c.aux = make(map[any]any)
	}
	if v, ok := c.aux[key]; ok {
		return v
	}
	v := build()
	c.aux[key] = v
	return v
}
