package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// freshViews rebuilds the topology from scratch on a clone and returns the
// reference views for comparison against the patched cache.
type views struct {
	nbrs     [][]int
	incident [][]Arc
	out      [][]Arc
	in       [][]Arc
	arcs     []Arc
}

func snapshotViews(g *Graph) views {
	n := g.N()
	v := views{
		nbrs:     make([][]int, n),
		incident: make([][]Arc, n),
		out:      make([][]Arc, n),
		in:       make([][]Arc, n),
		arcs:     append([]Arc(nil), g.ArcsView()...),
	}
	for x := 0; x < n; x++ {
		v.nbrs[x] = append([]int(nil), g.NeighborsView(x)...)
		v.incident[x] = append([]Arc(nil), g.IncidentArcsView(x)...)
		v.out[x] = append([]Arc(nil), g.OutArcsView(x)...)
		v.in[x] = append([]Arc(nil), g.InArcsView(x)...)
	}
	return v
}

// TestPatchedViewsMatchRebuild drives a random mutation stream through a
// graph whose cache is kept warm (so every mutation takes the patch path)
// and checks after each step that all views are identical to those of a
// freshly built cache on an equal graph.
func TestPatchedViewsMatchRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 12
	g := GNM(n, 20, rng)
	_ = g.ArcsView() // warm the cache so mutations patch instead of rebuild

	for step := 0; step < 400; step++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if g.HasEdge(u, v) {
			g.RemoveEdge(u, v)
		} else {
			g.AddEdge(u, v)
		}

		ref := g.Clone() // fresh graph, cold cache → full rebuild
		got, want := snapshotViews(g), snapshotViews(ref)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: patched views diverge from rebuild after flip {%d,%d}", step, u, v)
		}

		// Stable-id invariants: every live arc has a unique id below the
		// bound, and lookups agree with the arc set.
		seen := make(map[int]Arc)
		bound := g.ArcIDBound()
		for _, a := range got.arcs {
			id, ok := g.ArcIndex(a)
			if !ok {
				t.Fatalf("step %d: live arc %v missing from index", step, a)
			}
			if id < 0 || id >= bound {
				t.Fatalf("step %d: arc %v id %d outside [0,%d)", step, a, id, bound)
			}
			if prev, dup := seen[id]; dup {
				t.Fatalf("step %d: id %d assigned to both %v and %v", step, id, prev, a)
			}
			seen[id] = a
		}
		if len(seen) != 2*g.M() {
			t.Fatalf("step %d: %d ids for %d arcs", step, len(seen), 2*g.M())
		}
	}
}

// TestArcIDsStableAcrossPatches checks that arcs untouched by a mutation
// keep their ids, and that removed ids are recycled before the bound grows.
func TestArcIDsStableAcrossPatches(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(4, 5)
	_ = g.ArcsView()

	before := make(map[Arc]int)
	for _, a := range g.ArcsView() {
		id, _ := g.ArcIndex(a)
		before[a] = id
	}
	bound := g.ArcIDBound()

	g.RemoveEdge(2, 3)
	for a, id := range before {
		if a.Edge() == NormEdge(2, 3) {
			continue
		}
		got, ok := g.ArcIndex(a)
		if !ok || got != id {
			t.Fatalf("arc %v id changed %d -> %d (ok=%v) across unrelated removal", a, id, got, ok)
		}
	}

	g.AddEdge(1, 2) // should reuse the two freed ids
	if g.ArcIDBound() != bound {
		t.Fatalf("ArcIDBound grew %d -> %d despite free ids", bound, g.ArcIDBound())
	}
}

// TestEdgeDeltaJournal covers the epoch/journal contract: deltas replay the
// exact mutation sequence, truncation is reported, and wholesale loads break
// continuity.
func TestEdgeDeltaJournal(t *testing.T) {
	g := New(8)
	_ = g.ArcsView()
	e0 := g.MutEpoch()

	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.RemoveEdge(0, 1)

	ds, ok := g.EdgeDeltasSince(e0)
	if !ok || len(ds) != 3 {
		t.Fatalf("EdgeDeltasSince = %v, %v; want 3 deltas", ds, ok)
	}
	want := []struct {
		u, v  int
		added bool
	}{{0, 1, true}, {1, 2, true}, {0, 1, false}}
	for i, w := range want {
		if ds[i].U != w.u || ds[i].V != w.v || ds[i].Added != w.added {
			t.Fatalf("delta %d = %+v, want {%d %d %v}", i, ds[i], w.u, w.v, w.added)
		}
	}
	// The removal must report the same ids the addition assigned.
	if ds[2].IDUV != ds[0].IDUV || ds[2].IDVU != ds[0].IDVU {
		t.Fatalf("removal ids %+v don't match addition ids %+v", ds[2], ds[0])
	}

	// Caught-up consumer sees an empty, valid tail.
	if ds, ok := g.EdgeDeltasSince(g.MutEpoch()); !ok || len(ds) != 0 {
		t.Fatalf("caught-up EdgeDeltasSince = %v, %v", ds, ok)
	}

	// A future epoch is unanswerable.
	if _, ok := g.EdgeDeltasSince(g.MutEpoch() + 1); ok {
		t.Fatal("EdgeDeltasSince accepted a future epoch")
	}

	// Overflow the bounded journal: continuity from e0 must be lost but a
	// recent epoch still replays.
	mid := g.MutEpoch()
	for i := 0; i < 3*maxTopoJournal; i++ {
		if i%2 == 0 {
			g.AddEdge(3, 4)
		} else {
			g.RemoveEdge(3, 4)
		}
	}
	if _, ok := g.EdgeDeltasSince(e0); ok {
		t.Fatal("journal claimed continuity across overflow")
	}
	if _, ok := g.EdgeDeltasSince(mid); ok {
		t.Fatal("journal claimed continuity across overflow from mid epoch")
	}
	if ds, ok := g.EdgeDeltasSince(g.MutEpoch() - 5); !ok || len(ds) != 5 {
		t.Fatalf("recent tail: %d deltas, ok=%v; want 5, true", len(ds), ok)
	}
}

// TestMutationWithColdCacheBreaksContinuity: a mutation with no cache built
// takes the fallback path and resets the journal.
func TestMutationWithColdCacheBreaksContinuity(t *testing.T) {
	g := New(4)
	e0 := g.MutEpoch()
	g.AddEdge(0, 1) // cold cache → no journal entry
	if _, ok := g.EdgeDeltasSince(e0); ok {
		t.Fatal("cold-cache mutation left journal claiming continuity")
	}
	_ = g.ArcsView()
	e1 := g.MutEpoch()
	g.AddEdge(1, 2)
	if ds, ok := g.EdgeDeltasSince(e1); !ok || len(ds) != 1 {
		t.Fatalf("warm-cache mutation not journaled: %v, %v", ds, ok)
	}
}

// TestSetTopoPatching: with patching off every mutation invalidates the
// cache and never journals; re-enabling restores the patch path.
func TestSetTopoPatching(t *testing.T) {
	g := New(4)
	g.SetTopoPatching(false)
	_ = g.ArcsView()
	e := g.MutEpoch()
	g.AddEdge(0, 1)
	if g.cache.Load() != nil {
		t.Fatal("mutation with patching disabled kept the cache")
	}
	if _, ok := g.EdgeDeltasSince(e); ok {
		t.Fatal("mutation with patching disabled was journaled")
	}
	g.SetTopoPatching(true)
	_ = g.ArcsView()
	e = g.MutEpoch()
	g.AddEdge(1, 2)
	if g.cache.Load() == nil {
		t.Fatal("patch path did not keep the cache after re-enabling")
	}
	if ds, ok := g.EdgeDeltasSince(e); !ok || len(ds) != 1 {
		t.Fatalf("re-enabled patching not journaled: %v, %v", ds, ok)
	}
}

// TestPatchPreservesOldViews: view slices handed out before a mutation are
// not written through by the copy-on-write patch.
func TestPatchPreservesOldViews(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	nbrs := g.NeighborsView(1)
	inc := g.IncidentArcsView(1)
	arcs := g.ArcsView()
	wantNbrs := append([]int(nil), nbrs...)
	wantInc := append([]Arc(nil), inc...)
	wantArcs := append([]Arc(nil), arcs...)

	g.AddEdge(1, 3)
	g.RemoveEdge(0, 1)

	if !reflect.DeepEqual(nbrs, wantNbrs) || !reflect.DeepEqual(inc, wantInc) || !reflect.DeepEqual(arcs, wantArcs) {
		t.Fatal("patch mutated previously returned view slices")
	}
}

// TestAuxDroppedOnPatchUnlessPatchable: plain aux values vanish on any
// mutation; AuxPatchable values survive the patch path.
type patchableAux struct{ n int }

func (*patchableAux) AuxSurvivesMutation() {}

func TestAuxDroppedOnPatchUnlessPatchable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	_ = g.ArcsView()

	type plainKey struct{}
	type survivorKey struct{}
	plainBuilds, survivorBuilds := 0, 0
	getPlain := func() any {
		return g.Aux(plainKey{}, func() any { plainBuilds++; return &struct{}{} })
	}
	getSurvivor := func() any {
		return g.Aux(survivorKey{}, func() any { survivorBuilds++; return &patchableAux{} })
	}
	getPlain()
	getSurvivor()
	g.AddEdge(1, 2) // warm cache → patch path
	getPlain()
	getSurvivor()
	if plainBuilds != 2 {
		t.Fatalf("plain aux rebuilt %d times, want 2 (dropped on patch)", plainBuilds)
	}
	if survivorBuilds != 1 {
		t.Fatalf("patchable aux rebuilt %d times, want 1 (survives patch)", survivorBuilds)
	}
}
