// Package graph provides the undirected and bi-directed graph substrate for
// the FDLSP (full duplex link scheduling problem) reproduction: adjacency
// structures, arcs, bounded-radius neighborhoods, triangle enumeration and a
// family of generators (unit disk graphs are produced by package geom on top
// of this package).
//
// Nodes are dense integers 0..N-1, matching the paper's model of a network of
// n processors with distinct identities. All structures are deterministic:
// neighbor slices are sorted, and iteration helpers visit nodes and edges in
// increasing order so that simulations are reproducible under a fixed seed.
package graph

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Graph is a simple undirected graph over nodes 0..N()-1.
//
// The zero value is an empty graph with no nodes; use New or the generators
// to construct usable instances. Self-loops and parallel edges are rejected.
//
// Read accessors build and share an internal sorted-topology cache (see
// cache.go); AddEdge/RemoveEdge patch it in place when it exists (or drop it
// when patching is disabled), journaling each change for incremental aux
// consumers. Mutating concurrently with reads is not supported — the cache
// keeps the same discipline the adjacency maps already require.
type Graph struct {
	adj   []map[int]struct{}
	m     int // number of undirected edges
	cache atomic.Pointer[topoCache]

	// Mutation bookkeeping for incremental consumers: epoch counts applied
	// mutations; journal holds the EdgeDelta of epochs jFirst..epoch
	// (contiguous, bounded — see EdgeDeltasSince). noPatch forces the
	// legacy invalidate-wholesale path.
	epoch   atomic.Uint64
	jFirst  uint64
	journal []EdgeDelta
	noPatch bool
}

// New returns an empty graph with n isolated nodes.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	g := &Graph{adj: make([]map[int]struct{}, n), jFirst: 1}
	for i := range g.adj {
		g.adj[i] = make(map[int]struct{})
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// check panics if v is out of range.
func (g *Graph) check(v int) {
	if v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", v, len(g.adj)))
	}
}

// AddEdge inserts the undirected edge {u,v}. Adding an existing edge is a
// no-op; self-loops panic because the network model has none.
func (g *Graph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on node %d", u))
	}
	if _, ok := g.adj[u][v]; ok {
		return
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.m++
	g.mutated(u, v, true)
}

// RemoveEdge deletes the undirected edge {u,v} if present.
func (g *Graph) RemoveEdge(u, v int) {
	g.check(u)
	g.check(v)
	if _, ok := g.adj[u][v]; !ok {
		return
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.m--
	g.mutated(u, v, false)
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	_, ok := g.adj[u][v]
	return ok
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	return len(g.adj[v])
}

// Neighbors returns the neighbors of v in increasing order. The returned
// slice is freshly allocated and may be retained by the caller; use
// NeighborsView for the shared zero-copy variant.
func (g *Graph) Neighbors(v int) []int {
	g.check(v)
	if c := g.cache.Load(); c != nil {
		out := make([]int, len(c.nbrs[v]))
		copy(out, c.nbrs[v])
		return out
	}
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// EachNeighbor calls fn for every neighbor of v in increasing order.
func (g *Graph) EachNeighbor(v int, fn func(u int)) {
	for _, u := range g.Neighbors(v) {
		fn(u)
	}
}

// Edge is an undirected edge with U < V.
type Edge struct{ U, V int }

// NormEdge returns the canonical form of edge {u,v} with U < V.
func NormEdge(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Edges returns all undirected edges sorted lexicographically.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := range g.adj {
		for v := range g.adj[u] {
			if u < v {
				out = append(out, Edge{U: u, V: v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// MaxDegree returns Δ, the maximum node degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for v := range g.adj {
		if len(g.adj[v]) > d {
			d = len(g.adj[v])
		}
	}
	return d
}

// AvgDegree returns the average node degree, 2m/n (0 for an empty graph).
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(len(g.adj))
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(len(g.adj))
	for u := range g.adj {
		for v := range g.adj[u] {
			if u < v {
				c.AddEdge(u, v)
			}
		}
	}
	return c
}

// Equal reports whether g and h have identical node and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for u := range g.adj {
		if len(g.adj[u]) != len(h.adj[u]) {
			return false
		}
		for v := range g.adj[u] {
			if _, ok := h.adj[u][v]; !ok {
				return false
			}
		}
	}
	return true
}

// CommonNeighbors returns the nodes adjacent to both u and v, in increasing
// order. For an edge {u,v} each common neighbor forms a triangle with it.
func (g *Graph) CommonNeighbors(u, v int) []int {
	g.check(u)
	g.check(v)
	a, b := g.adj[u], g.adj[v]
	if len(a) > len(b) {
		a, b = b, a
	}
	var out []int
	for w := range a {
		if _, ok := b[w]; ok {
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

// String returns a compact human-readable description.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d Δ=%d}", g.N(), g.M(), g.MaxDegree())
}
