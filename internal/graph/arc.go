package graph

import (
	"fmt"
	"sort"
)

// Arc is a directed communication link: From transmits, To receives. The
// bi-directed graph of the paper contains both (u,v) and (v,u) for every
// undirected edge {u,v}.
type Arc struct {
	From, To int
}

// Reverse returns the opposite arc.
func (a Arc) Reverse() Arc { return Arc{From: a.To, To: a.From} }

// Edge returns the underlying undirected edge in canonical form.
func (a Arc) Edge() Edge { return NormEdge(a.From, a.To) }

// String renders the arc as "u->v".
func (a Arc) String() string { return fmt.Sprintf("%d->%d", a.From, a.To) }

// cloneArcs returns a freshly allocated copy of a cached arc slice.
func cloneArcs(src []Arc) []Arc {
	out := make([]Arc, len(src))
	copy(out, src)
	return out
}

// Arcs returns both arcs of every undirected edge, sorted lexicographically
// by (From, To). For a graph with m edges the result has 2m arcs. The slice
// is freshly allocated; ArcsView is the shared zero-copy variant.
func (g *Graph) Arcs() []Arc {
	if g.cache.Load() != nil {
		return cloneArcs(g.ArcsView())
	}
	out := make([]Arc, 0, 2*g.m)
	for u := range g.adj {
		for v := range g.adj[u] {
			out = append(out, Arc{From: u, To: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// IncidentArcs returns all arcs with v as an endpoint (both directions of
// every incident edge), sorted. The slice is freshly allocated;
// IncidentArcsView is the shared zero-copy variant.
func (g *Graph) IncidentArcs(v int) []Arc {
	g.check(v)
	if c := g.cache.Load(); c != nil {
		return cloneArcs(c.incident[v])
	}
	nbrs := g.Neighbors(v)
	out := make([]Arc, 0, 2*len(nbrs))
	for _, u := range nbrs {
		out = append(out, Arc{From: v, To: u}, Arc{From: u, To: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// OutArcs returns the arcs leaving v, sorted by head. The slice is freshly
// allocated; OutArcsView is the shared zero-copy variant.
func (g *Graph) OutArcs(v int) []Arc {
	g.check(v)
	if c := g.cache.Load(); c != nil {
		return cloneArcs(c.out[v])
	}
	nbrs := g.Neighbors(v)
	out := make([]Arc, 0, len(nbrs))
	for _, u := range nbrs {
		out = append(out, Arc{From: v, To: u})
	}
	return out
}

// InArcs returns the arcs entering v, sorted by tail. The slice is freshly
// allocated; InArcsView is the shared zero-copy variant.
func (g *Graph) InArcs(v int) []Arc {
	g.check(v)
	if c := g.cache.Load(); c != nil {
		return cloneArcs(c.in[v])
	}
	nbrs := g.Neighbors(v)
	out := make([]Arc, 0, len(nbrs))
	for _, u := range nbrs {
		out = append(out, Arc{From: u, To: v})
	}
	return out
}
