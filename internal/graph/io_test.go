package graph

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		n := 1 + rng.Intn(40)
		g := GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatal(err)
		}
		h, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Equal(h) {
			t.Fatalf("round trip mismatch for %v", g)
		}
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# a comment\n3 2\n\n0 1\n# another\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("parsed n=%d m=%d", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadEdgeList(strings.NewReader("2 5\n0 1\n")); err == nil {
		t.Error("edge-count mismatch should fail")
	}
	if _, err := ReadEdgeList(strings.NewReader("2 1\nx y\n")); err == nil {
		t.Error("garbage line should fail")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := GNM(15, 30, rng)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var h Graph
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(&h) {
		t.Fatal("JSON round trip mismatch")
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 15; i++ {
		n := 1 + rng.Intn(30)
		g := GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		var buf bytes.Buffer
		if err := g.WriteDIMACS(&buf); err != nil {
			t.Fatal(err)
		}
		h, err := ReadDIMACS(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Equal(h) {
			t.Fatalf("DIMACS round trip mismatch for %v", g)
		}
	}
}

func TestReadDIMACSQuirks(t *testing.T) {
	in := "c a comment\np edge 4 3\ne 1 2\ne 1 2\ne 2 2\ne 3 4\n"
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate tolerated, self-loop dropped.
	if g.N() != 4 || g.M() != 2 {
		t.Errorf("parsed n=%d m=%d", g.N(), g.M())
	}
	for _, bad := range []string{
		"e 1 2\n",
		"p edge 2 1\ne 1 5\n",
		"p matrix 2 1\n",
		"p edge 2 1\nwhat\n",
		"",
	} {
		if _, err := ReadDIMACS(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted bad input %q", bad)
		}
	}
}

// TestUnmarshalJSONRejectsInconsistentInput pins the decode-path hardening:
// malformed graph JSON from HTTP clients must come back as an error, never
// a panic (which would crash the handler into a 500).
func TestUnmarshalJSONRejectsInconsistentInput(t *testing.T) {
	cases := map[string]string{
		"edge endpoint out of range": `{"n":3,"edges":[[0,9]]}`,
		"negative endpoint":          `{"n":3,"edges":[[-1,2]]}`,
		"self loop":                  `{"n":3,"edges":[[1,1]]}`,
		"negative node count":        `{"n":-2,"edges":[]}`,
	}
	for name, in := range cases {
		var g Graph
		if err := json.Unmarshal([]byte(in), &g); err == nil {
			t.Errorf("%s: %s decoded without error", name, in)
		}
	}
}

func TestReadEdgeListRejectsBadEdges(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("-3 0\n")); err == nil {
		t.Error("negative node count should fail")
	}
	if _, err := ReadEdgeList(strings.NewReader("3 1\n0 9\n")); err == nil {
		t.Error("out-of-range edge should fail")
	}
	if _, err := ReadEdgeList(strings.NewReader("3 1\n1 1\n")); err == nil {
		t.Error("self-loop edge should fail")
	}
}
