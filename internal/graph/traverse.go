package graph

import "sort"

// BFSFrom returns, for every node, the hop distance from src, with -1 for
// unreachable nodes.
func (g *Graph) BFSFrom(src int) []int {
	g.check(src)
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Within returns all nodes at hop distance 1..r from v (excluding v itself),
// in increasing order. This is the N^r(v) neighborhood of the paper minus v.
func (g *Graph) Within(v, r int) []int {
	g.check(v)
	if r <= 0 {
		return nil
	}
	seen := map[int]int{v: 0}
	frontier := []int{v}
	for d := 1; d <= r && len(frontier) > 0; d++ {
		var next []int
		for _, x := range frontier {
			for _, u := range g.Neighbors(x) {
				if _, ok := seen[u]; !ok {
					seen[u] = d
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	out := make([]int, 0, len(seen)-1)
	for u := range seen {
		if u != v {
			out = append(out, u)
		}
	}
	sort.Ints(out)
	return out
}

// Dist returns the hop distance between u and v, or -1 if disconnected.
// It runs a BFS bounded by the target, so repeated bounded queries are cheap
// on the sparse sensor-network graphs used here.
func (g *Graph) Dist(u, v int) int {
	g.check(u)
	g.check(v)
	if u == v {
		return 0
	}
	dist := map[int]int{u: 0}
	frontier := []int{u}
	for len(frontier) > 0 {
		var next []int
		for _, x := range frontier {
			for _, w := range g.Neighbors(x) {
				if _, ok := dist[w]; !ok {
					dist[w] = dist[x] + 1
					if w == v {
						return dist[w]
					}
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return -1
}

// Connected reports whether the graph is connected. The empty graph and the
// single-node graph are connected.
func (g *Graph) Connected() bool {
	if g.N() <= 1 {
		return true
	}
	dist := g.BFSFrom(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Components returns the connected components, each sorted, ordered by their
// smallest node.
func (g *Graph) Components() [][]int {
	var comps [][]int
	seen := make([]bool, g.N())
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		var comp []int
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			comp = append(comp, v)
			for _, u := range g.Neighbors(v) {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// InducedSubgraph returns the subgraph induced by keep (nodes renumbered
// 0..len(keep)-1 following keep's sorted order) along with the mapping from
// new IDs back to original IDs.
func (g *Graph) InducedSubgraph(keep []int) (*Graph, []int) {
	ids := append([]int(nil), keep...)
	sort.Ints(ids)
	index := make(map[int]int, len(ids))
	for i, v := range ids {
		g.check(v)
		index[v] = i
	}
	sub := New(len(ids))
	for i, v := range ids {
		for u := range g.adj[v] {
			if j, ok := index[u]; ok && i < j {
				sub.AddEdge(i, j)
			}
		}
	}
	return sub, ids
}
