package graph

import (
	"fmt"
	"math/rand"
)

// Complete returns K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// CompleteBipartite returns K_{a,b} with parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Cycle returns C_n (n >= 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs n >= 3, got %d", n))
	}
	g := New(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n)
	}
	return g
}

// Path returns P_n, the path with n nodes and n-1 edges.
func Path(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	return g
}

// Star returns K_{1,n-1} with node 0 at the center.
func Star(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	return g
}

// Grid returns the rows×cols grid graph (4-neighborhood).
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// RandomTree returns a uniformly random labelled tree on n nodes built from a
// random Prüfer-like attachment: node i (i >= 1) attaches to a uniform node
// in 0..i-1. The result is always connected and acyclic.
func RandomTree(n int, rng *rand.Rand) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v))
	}
	return g
}

// GNM returns a uniform random simple graph with n nodes and m edges, the
// "general graphs" workload of the paper's Figures 11–15. It panics if m
// exceeds n(n-1)/2.
func GNM(n, m int, rng *rand.Rand) *Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic(fmt.Sprintf("graph: GNM m=%d exceeds max %d for n=%d", m, maxM, n))
	}
	g := New(n)
	// Dense case: sample by shuffling all pairs; sparse case: rejection.
	if m > maxM/2 {
		pairs := make([]Edge, 0, maxM)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				pairs = append(pairs, Edge{U: u, V: v})
			}
		}
		rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
		for _, e := range pairs[:m] {
			g.AddEdge(e.U, e.V)
		}
		return g
	}
	for g.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g
}

// ConnectedGNM returns a connected uniform-ish random graph with n nodes and
// m >= n-1 edges: a random spanning tree plus m-(n-1) random extra edges.
// This matches the evaluation's need for connected instances (the DFS
// algorithm schedules one connected network).
func ConnectedGNM(n, m int, rng *rand.Rand) *Graph {
	if m < n-1 {
		panic(fmt.Sprintf("graph: ConnectedGNM needs m >= n-1 (n=%d m=%d)", n, m))
	}
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic(fmt.Sprintf("graph: ConnectedGNM m=%d exceeds max %d for n=%d", m, maxM, n))
	}
	g := RandomTree(n, rng)
	for g.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g
}
