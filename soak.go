package fdlsp

import (
	"fdlsp/internal/sim"
	"fdlsp/internal/soak"
)

// This file exposes the continuous-operation layer: the churn soak that
// keeps a TDMA schedule alive under an unbounded perturbation stream and
// measures stabilization while it runs, and the open-ended fault stream
// that materializes bounded crash/restart windows for its engine probes.

type (
	// ChurnConfig parameterizes a churn soak: node count and QUDG geometry,
	// mobility, crash/restart and leave/join rates, adversarial initial
	// coloring, and the cadence of protocol-level reschedules under loss.
	ChurnConfig = soak.Config
	// ChurnInit selects the soak's initial coloring: a valid greedy schedule,
	// all arcs uncolored, or every arc jammed into one slot.
	ChurnInit = soak.InitMode
	// ChurnEpochReport is the outcome of one churn epoch: perturbations
	// applied, dirty arcs, convergence rounds, usable-frame fractions, and
	// the engine probe when one ran.
	ChurnEpochReport = soak.EpochReport
	// ChurnSummary aggregates a bounded soak run.
	ChurnSummary = soak.Summary
	// ChurnProbeReport is the outcome of one protocol-level reschedule run
	// inside the soak.
	ChurnProbeReport = soak.ProbeReport
	// ChurnSoak is a running soak; drive it with Step or Run.
	ChurnSoak = soak.Soak
	// FaultStream is an unbounded, seeded source of fault windows: Plan
	// materializes the bounded FaultPlan for one epoch of continuous
	// operation. Every window is a pure function of (Seed, epoch, node).
	FaultStream = sim.FaultStream
)

// Initial colorings a churn soak can start from.
const (
	ChurnInitGreedy   = soak.InitGreedy
	ChurnInitZero     = soak.InitZero
	ChurnInitConflict = soak.InitConflict
)

// NewChurnSoak builds a soak from the config, validates it, and establishes
// the initial topology and schedule.
func NewChurnSoak(cfg ChurnConfig) (*ChurnSoak, error) { return soak.New(cfg) }
